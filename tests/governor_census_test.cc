// Governed census execution: partial results, per-focal completion state,
// degradation, and the deterministic cancel-at-checkpoint-#i failpoint
// sweep. The sweep is the core robustness contract: for EVERY checkpoint i
// (strided) of ND-BAS, ND-DIFF and PT-OPT at 1 and 8 threads, cancelling at
// exactly checkpoint i must (a) not crash or leak (this binary runs under
// ASan and TSan in CI), (b) leave every kComplete focal count bit-identical
// to the uninterrupted run, and (c) report accurate partial-result flags.

#include "census/census.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "dynamic/incremental_census.h"
#include "exec/failpoints.h"
#include "exec/governor.h"
#include "graph/generators.h"
#include "pattern/catalog.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"

namespace egocensus {
namespace {

using testing::MakeGraph;

/// This file exercises the generic engines' governance contracts (their
/// checkpoint sites, charge sizes, and all-or-nothing semantics), so the
/// fast path — which would otherwise take these small unlabeled patterns —
/// is pinned off. Its own governed sweeps live in fastpath_property_test.
CensusOptions GenericOptions() {
  CensusOptions opts;
  opts.fast_path = FastPathMode::kOff;
  return opts;
}

Graph SweepGraph() {
  GeneratorOptions gen;
  gen.num_nodes = 120;
  gen.edges_per_node = 3;
  gen.seed = 17;
  return GeneratePreferentialAttachment(gen);
}

/// The per-unit-of-work failpoint of an algorithm: ND engines checkpoint
/// per focal node, PT engines per match cluster.
const char* CheckpointSite(CensusAlgorithm algorithm) {
  switch (algorithm) {
    case CensusAlgorithm::kPtBas:
    case CensusAlgorithm::kPtOpt:
    case CensusAlgorithm::kPtRnd:
      return "census/cluster";
    default:
      return "census/focal";
  }
}

class GovernorCensusTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoints::DisarmAll(); }
};

TEST_F(GovernorCensusTest, UngovernedRunMarksEveryFocalComplete) {
  Graph g = SweepGraph();
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  CensusOptions opts = GenericOptions();
  opts.algorithm = CensusAlgorithm::kNdBas;
  opts.k = 2;
  auto r = RunCensus(g, tri, focal, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->complete());
  ASSERT_EQ(r->focal_state.size(), g.NumNodes());
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    EXPECT_EQ(r->focal_state[n], FocalState::kComplete);
  }
}

TEST_F(GovernorCensusTest, ExpiredDeadlineReturnsPartialResult) {
  Graph g = SweepGraph();
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  for (auto algorithm :
       {CensusAlgorithm::kNdBas, CensusAlgorithm::kNdDiff,
        CensusAlgorithm::kNdPvot, CensusAlgorithm::kPtBas,
        CensusAlgorithm::kPtOpt}) {
    Governor gov;
    gov.SetDeadline(Deadline::AtMicros(1));  // long past
    CensusOptions opts = GenericOptions();
    opts.algorithm = algorithm;
    opts.k = 2;
    opts.governor = &gov;
    auto r = RunCensus(g, tri, focal, opts);
    // Partial result as a VALUE, not an error.
    ASSERT_TRUE(r.ok()) << CensusAlgorithmName(algorithm);
    EXPECT_EQ(r->exec_status.code(), StatusCode::kDeadlineExceeded)
        << CensusAlgorithmName(algorithm);
    EXPECT_FALSE(r->complete());
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      EXPECT_EQ(r->focal_state[n], FocalState::kPending);
      EXPECT_EQ(r->counts[n], 0u);
    }
  }
}

TEST_F(GovernorCensusTest, TinyMemoryBudgetStopsWithResourceExhausted) {
  Graph g = SweepGraph();
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  Governor gov;
  gov.SetMemoryLimitBytes(64);  // smaller than any candidate set charge
  CensusOptions opts = GenericOptions();
  opts.algorithm = CensusAlgorithm::kNdBas;
  opts.k = 2;
  opts.governor = &gov;
  auto r = RunCensus(g, tri, focal, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->exec_status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(gov.memory_charged_bytes(), 64u);
}

TEST_F(GovernorCensusTest, DegradeToApproxCoversInterruptedFocals) {
  Graph g = SweepGraph();
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  Governor gov;
  gov.SetDeadline(Deadline::AtMicros(1));
  CensusOptions opts = GenericOptions();
  opts.algorithm = CensusAlgorithm::kNdPvot;
  opts.k = 2;
  opts.governor = &gov;
  opts.degrade_to_approx = true;
  opts.degrade_sample_rate = 1.0;
  auto r = RunCensus(g, tri, focal, opts);
  ASSERT_TRUE(r.ok());
  // Still reported as interrupted — estimates are not exact results...
  EXPECT_EQ(r->exec_status.code(), StatusCode::kDeadlineExceeded);
  // ...but no focal is left as a hole: every unfinished one is re-covered.
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    EXPECT_NE(r->focal_state[n], FocalState::kPending) << n;
  }
}

TEST_F(GovernorCensusTest, ExplicitCancelDoesNotDegrade) {
  Graph g = SweepGraph();
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  Governor gov;
  gov.RequestCancel();  // the user asked out: degradation must not run
  CensusOptions opts = GenericOptions();
  opts.algorithm = CensusAlgorithm::kNdPvot;
  opts.k = 2;
  opts.governor = &gov;
  opts.degrade_to_approx = true;
  auto r = RunCensus(g, tri, focal, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->exec_status.code(), StatusCode::kCancelled);
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    EXPECT_NE(r->focal_state[n], FocalState::kApprox);
  }
}

#if EGO_FAILPOINTS_ENABLED

TEST_F(GovernorCensusTest, CancelAtEveryCheckpointSweep) {
  Graph g = SweepGraph();
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  for (auto algorithm : {CensusAlgorithm::kNdBas, CensusAlgorithm::kNdDiff,
                         CensusAlgorithm::kPtOpt}) {
    const char* site = CheckpointSite(algorithm);
    for (std::uint32_t threads : {1u, 8u}) {
      CensusOptions opts = GenericOptions();
      opts.algorithm = algorithm;
      opts.k = 2;
      opts.num_threads = threads;

      // Uninterrupted reference run (the bit-identity oracle).
      auto baseline = RunCensus(g, tri, focal, opts);
      ASSERT_TRUE(baseline.ok());
      ASSERT_TRUE(baseline->complete());

      // Observe pass: count how many times the site is hit end-to-end.
      failpoints::Arm(site, 0, nullptr);
      {
        Governor gov;
        CensusOptions governed = opts;
        governed.governor = &gov;
        ASSERT_TRUE(RunCensus(g, tri, focal, governed).ok());
      }
      const std::uint64_t hits = failpoints::Hits(site);
      failpoints::DisarmAll();
      ASSERT_GT(hits, 0u) << CensusAlgorithmName(algorithm);

      // Cancel at checkpoint #i for all i (strided to bound test time).
      const std::uint64_t stride = std::max<std::uint64_t>(1, hits / 20);
      for (std::uint64_t i = 1; i <= hits; i += stride) {
        SCOPED_TRACE(std::string(CensusAlgorithmName(algorithm)) +
                     " threads=" + std::to_string(threads) +
                     " cancel@" + std::to_string(i) + "/" +
                     std::to_string(hits));
        Governor gov;
        failpoints::Arm(site, i, [&gov] { gov.RequestCancel(); });
        CensusOptions governed = opts;
        governed.governor = &gov;
        auto r = RunCensus(g, tri, focal, governed);
        failpoints::DisarmAll();
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(r->exec_status.code(), StatusCode::kCancelled);
        EXPECT_FALSE(r->complete());
        std::size_t pending = 0;
        for (NodeId n = 0; n < g.NumNodes(); ++n) {
          switch (r->focal_state[n]) {
            case FocalState::kComplete:
              // The invariant: a flag saying "complete" means the count is
              // bit-identical to the uninterrupted run.
              EXPECT_EQ(r->counts[n], baseline->counts[n]) << "node " << n;
              break;
            case FocalState::kPending:
              ++pending;
              EXPECT_LE(r->counts[n], baseline->counts[n]) << "node " << n;
              break;
            case FocalState::kApprox:
              ADD_FAILURE() << "unexpected kApprox at node " << n;
              break;
          }
        }
        // The focal/cluster whose checkpoint observed the cancel was not
        // recorded, so at least one unit is pending.
        EXPECT_GE(pending, 1u);
      }

      // Arming past the last hit: the run completes untouched.
      {
        Governor gov;
        failpoints::Arm(site, hits + 1, [&gov] { gov.RequestCancel(); });
        CensusOptions governed = opts;
        governed.governor = &gov;
        auto r = RunCensus(g, tri, focal, governed);
        failpoints::DisarmAll();
        ASSERT_TRUE(r.ok());
        EXPECT_TRUE(r->complete());
        EXPECT_EQ(r->counts, baseline->counts);
      }
    }
  }
}

TEST_F(GovernorCensusTest, MatcherCancellationLeavesAllFocalsPending) {
  Graph g = SweepGraph();
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  Governor gov;
  // Cancel inside the global match phase (PT engines match once up front):
  // a partial match set would undercount every focal, so the engine must
  // skip counting entirely.
  failpoints::Arm("match/extend", 1, [&gov] { gov.RequestCancel(); });
  CensusOptions opts = GenericOptions();
  opts.algorithm = CensusAlgorithm::kPtOpt;
  opts.k = 2;
  opts.governor = &gov;
  auto r = RunCensus(g, tri, focal, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->exec_status.code(), StatusCode::kCancelled);
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    EXPECT_EQ(r->focal_state[n], FocalState::kPending);
    EXPECT_EQ(r->counts[n], 0u);
  }
}

TEST_F(GovernorCensusTest, BudgetExhaustionMidMergeIsAllOrNothing) {
  Graph g = SweepGraph();
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  Governor gov;
  gov.SetMemoryLimitBytes(1ull << 30);
  // Blow the budget at the first merge step: PT completion is
  // all-or-nothing, so every focal must stay pending (counts are lower
  // bounds) even though most of the counting work finished.
  failpoints::Arm("census/merge", 1,
                  [&gov] { gov.ChargeMemory(1ull << 31); });
  CensusOptions opts = GenericOptions();
  opts.algorithm = CensusAlgorithm::kPtOpt;
  opts.k = 2;
  opts.num_threads = 4;
  opts.governor = &gov;
  auto r = RunCensus(g, tri, focal, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->exec_status.code(), StatusCode::kResourceExhausted);
  CensusOptions ungoverned = GenericOptions();
  ungoverned.algorithm = CensusAlgorithm::kPtOpt;
  ungoverned.k = 2;
  auto baseline = RunCensus(g, tri, focal, ungoverned);
  ASSERT_TRUE(baseline.ok());
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    EXPECT_EQ(r->focal_state[n], FocalState::kPending);
    EXPECT_LE(r->counts[n], baseline->counts[n]);
  }
}

TEST_F(GovernorCensusTest, PoolChunkCancellationPropagatesToSiblings) {
  ThreadPool pool(4);
  Governor gov;
  std::atomic<std::size_t> processed{0};
  failpoints::Arm("pool/chunk", 5, [&gov] { gov.RequestCancel(); });
  // The chunk body checkpoints like every governed engine chunk does: the
  // cancel becomes a recorded stop at the next checkpoint, and the per-pop
  // stopped() check then propagates it to every sibling worker.
  pool.ParallelFor(0, 10'000, /*grain=*/1, &gov,
                   [&processed, &gov](std::size_t begin, std::size_t end,
                                      unsigned) {
                     if (gov.Checkpoint() != StopReason::kNone) return;
                     processed.fetch_add(end - begin,
                                         std::memory_order_relaxed);
                   });
  EXPECT_TRUE(gov.stopped());
  EXPECT_EQ(gov.reason(), StopReason::kCancelled);
  // With 10k single-item chunks and a cancel at chunk #5, most of the
  // range must be left unprocessed.
  EXPECT_LT(processed.load(), 10'000u);
}

TEST_F(GovernorCensusTest, DynamicBatchAbortsAtUpdateBoundary) {
  Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}});
  DynamicGraph dg(std::move(g));
  Governor gov;
  IncrementalCensus::Options opts;
  opts.k = 1;
  opts.governor = &gov;
  auto census = IncrementalCensus::Create(&dg, MakeTriangle(false), opts);
  ASSERT_TRUE(census.ok()) << census.status().ToString();
  const auto counts_before = census->counts();

  // Cancel at the third per-update checkpoint: updates 1-2 apply (prefix
  // stays applied), update 3 does not.
  failpoints::Arm("dynamic/update", 3, [&gov] { gov.RequestCancel(); });
  std::vector<GraphUpdate> updates = {
      GraphUpdate::AddEdge(3, 0),   // applies
      GraphUpdate::AddEdge(4, 2),   // applies
      GraphUpdate::AddEdge(4, 0),   // aborted
  };
  auto stats = census->ApplyBatch(updates);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCancelled);

  // The maintained counts equal a from-scratch census over the prefix.
  Graph expected = MakeGraph(
      6, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {3, 0}, {4, 2}});
  CensusOptions copts = GenericOptions();
  copts.algorithm = CensusAlgorithm::kNdBas;
  copts.k = 1;
  auto reference = RunCensus(expected, MakeTriangle(false),
                             AllNodes(expected), copts);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(census->counts(), reference->counts);
  EXPECT_NE(census->counts(), counts_before);
}

#endif  // EGO_FAILPOINTS_ENABLED

// Needs no failpoint, so it also runs in the kill-switch build.
TEST_F(GovernorCensusTest, DynamicExpiredDeadlineLeavesCountsUntouched) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}});
  DynamicGraph dg(std::move(g));
  Governor gov;
  gov.SetDeadline(Deadline::AtMicros(1));
  IncrementalCensus::Options opts;
  opts.k = 1;
  opts.governor = &gov;
  auto census = IncrementalCensus::Create(&dg, MakeTriangle(false), opts);
  ASSERT_TRUE(census.ok()) << census.status().ToString();
  const auto counts_before = census->counts();
  std::vector<GraphUpdate> updates = {GraphUpdate::AddEdge(0, 3)};
  auto stats = census->ApplyBatch(updates);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(census->counts(), counts_before);
}

}  // namespace
}  // namespace egocensus
