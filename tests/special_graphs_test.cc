// Census counts on structured graphs with closed-form answers: complete
// graphs, stars, cycles, paths, grids and disconnected graphs. These pin
// the counting semantics (matches = distinct subgraphs) against binomial
// formulas rather than against another implementation.

#include <gtest/gtest.h>

#include "census/census.h"
#include "match/cn_matcher.h"
#include "pattern/catalog.h"
#include "pattern/pattern_parser.h"
#include "tests/test_util.h"

namespace egocensus {
namespace {

using testing::MakeGraph;

std::uint64_t Choose(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  std::uint64_t result = 1;
  for (std::uint64_t i = 0; i < k; ++i) {
    result = result * (n - i) / (i + 1);
  }
  return result;
}

Graph CompleteGraph(std::uint32_t n) {
  Graph g;
  g.AddNodes(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.AddEdge(u, v);
  }
  CheckOk(g.Finalize(), "test fixture setup");
  return g;
}

Graph StarGraph(std::uint32_t leaves) {
  Graph g;
  g.AddNodes(leaves + 1);
  for (NodeId leaf = 1; leaf <= leaves; ++leaf) g.AddEdge(0, leaf);
  CheckOk(g.Finalize(), "test fixture setup");
  return g;
}

Graph CycleGraph(std::uint32_t n) {
  Graph g;
  g.AddNodes(n);
  for (NodeId u = 0; u < n; ++u) g.AddEdge(u, (u + 1) % n);
  CheckOk(g.Finalize(), "test fixture setup");
  return g;
}

Graph PathGraph(std::uint32_t n) {
  Graph g;
  g.AddNodes(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.AddEdge(u, u + 1);
  CheckOk(g.Finalize(), "test fixture setup");
  return g;
}

TEST(CompleteGraphTest, GlobalMatchCounts) {
  Graph k6 = CompleteGraph(6);
  CnMatcher matcher;
  EXPECT_EQ(matcher.FindMatches(k6, MakeTriangle(false)).size(),
            Choose(6, 3));
  EXPECT_EQ(matcher.FindMatches(k6, MakeClique4(false)).size(), Choose(6, 4));
  EXPECT_EQ(matcher.FindMatches(k6, MakeSingleEdge()).size(), Choose(6, 2));
  // 4-cycles in K_n: choose 4 vertices, 3 distinct cycles each.
  EXPECT_EQ(matcher.FindMatches(k6, MakeSquare(false)).size(),
            Choose(6, 4) * 3);
}

TEST(CompleteGraphTest, EgoCensusIsGlobalAtKOne) {
  // Diameter 1: every 1-hop ego network is the whole graph.
  Graph k7 = CompleteGraph(7);
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(k7);
  for (auto algorithm :
       {CensusAlgorithm::kNdBas, CensusAlgorithm::kNdPvot,
        CensusAlgorithm::kPtOpt}) {
    CensusOptions opts;
    opts.algorithm = algorithm;
    opts.k = 1;
    auto result = RunCensus(k7, tri, focal, opts);
    ASSERT_TRUE(result.ok());
    for (NodeId n = 0; n < 7; ++n) {
      EXPECT_EQ(result->counts[n], Choose(7, 3))
          << CensusAlgorithmName(algorithm);
    }
  }
}

TEST(StarGraphTest, WedgeCounts) {
  // Star with L leaves: wedges (path3) centered at the hub = C(L, 2); no
  // triangles anywhere.
  Graph star = StarGraph(8);
  CnMatcher matcher;
  EXPECT_EQ(matcher.FindMatches(star, MakePath(3, false)).size(),
            Choose(8, 2));
  EXPECT_EQ(matcher.FindMatches(star, MakeTriangle(false)).size(), 0u);

  // Ego census of the wedge at k=1: the hub sees all of them, a leaf sees
  // only {leaf, hub} (no wedge fits in 2 nodes).
  Pattern wedge = MakePath(3, false);
  auto focal = AllNodes(star);
  CensusOptions opts;
  opts.algorithm = CensusAlgorithm::kNdPvot;
  opts.k = 1;
  auto result = RunCensus(star, wedge, focal, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->counts[0], Choose(8, 2));
  EXPECT_EQ(result->counts[1], 0u);
  // At k=2 a leaf sees the whole star.
  opts.k = 2;
  result = RunCensus(star, wedge, focal, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->counts[1], Choose(8, 2));
}

TEST(CycleGraphTest, EdgeCensusByRadius) {
  // In C_12 the k-hop ego network of any node is a path of 2k+1 nodes with
  // 2k edges (for 2k + 1 <= 12).
  Graph cycle = CycleGraph(12);
  Pattern edge = MakeSingleEdge();
  auto focal = AllNodes(cycle);
  for (std::uint32_t k : {1u, 2u, 3u, 4u, 5u}) {
    CensusOptions opts;
    opts.algorithm = CensusAlgorithm::kNdPvot;
    opts.k = k;
    auto result = RunCensus(cycle, edge, focal, opts);
    ASSERT_TRUE(result.ok());
    std::uint64_t expected = 2 * k;
    for (NodeId n = 0; n < 12; ++n) {
      EXPECT_EQ(result->counts[n], expected) << "k=" << k;
    }
  }
  // k = 6 closes the cycle: all 12 edges.
  CensusOptions opts;
  opts.algorithm = CensusAlgorithm::kNdPvot;
  opts.k = 6;
  auto result = RunCensus(cycle, edge, focal, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->counts[0], 12u);
}

TEST(CycleGraphTest, SquareInSquare) {
  Graph c4 = CycleGraph(4);
  CnMatcher matcher;
  EXPECT_EQ(matcher.FindMatches(c4, MakeSquare(false)).size(), 1u);
  EXPECT_EQ(matcher.FindMatches(c4, MakeTriangle(false)).size(), 0u);
}

TEST(PathGraphTest, SubpathCounts) {
  // Paths with p nodes inside a path with n nodes: n - p + 1.
  Graph path = PathGraph(10);
  CnMatcher matcher;
  for (int p = 2; p <= 6; ++p) {
    EXPECT_EQ(matcher.FindMatches(path, MakePath(p, false)).size(),
              static_cast<std::size_t>(10 - p + 1))
        << "p=" << p;
  }
}

TEST(DisconnectedGraphTest, CensusSeesOnlyOwnComponent) {
  // Two triangles in separate components.
  Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  for (auto algorithm :
       {CensusAlgorithm::kNdBas, CensusAlgorithm::kNdPvot,
        CensusAlgorithm::kNdDiff, CensusAlgorithm::kPtBas,
        CensusAlgorithm::kPtOpt}) {
    CensusOptions opts;
    opts.algorithm = algorithm;
    opts.k = 5;  // radius larger than the component
    auto result = RunCensus(g, tri, focal, opts);
    ASSERT_TRUE(result.ok());
    for (NodeId n = 0; n < 6; ++n) {
      EXPECT_EQ(result->counts[n], 1u)
          << CensusAlgorithmName(algorithm) << " node " << n;
    }
  }
}

TEST(IsolatedNodesTest, ZeroCountsEverywhere) {
  Graph g = MakeGraph(5, {{0, 1}});  // nodes 2, 3, 4 isolated
  Pattern edge = MakeSingleEdge();
  auto focal = AllNodes(g);
  CensusOptions opts;
  opts.algorithm = CensusAlgorithm::kNdPvot;
  opts.k = 2;
  auto result = RunCensus(g, edge, focal, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->counts[0], 1u);
  EXPECT_EQ(result->counts[2], 0u);
  // Single-node pattern still counts the isolated node itself.
  Pattern node = MakeSingleNode();
  auto node_result = RunCensus(g, node, focal, opts);
  ASSERT_TRUE(node_result.ok());
  EXPECT_EQ(node_result->counts[2], 1u);
}

TEST(BipartiteTest, OddCyclesAbsent) {
  // Complete bipartite K_{3,3}: no triangles, squares = C(3,2)*C(3,2) = 9.
  Graph g;
  g.AddNodes(6);
  for (NodeId u = 0; u < 3; ++u) {
    for (NodeId v = 3; v < 6; ++v) g.AddEdge(u, v);
  }
  CheckOk(g.Finalize(), "test fixture setup");
  CnMatcher matcher;
  EXPECT_EQ(matcher.FindMatches(g, MakeTriangle(false)).size(), 0u);
  EXPECT_EQ(matcher.FindMatches(g, MakeSquare(false)).size(), 9u);
}

TEST(CliquePlusTailTest, SubpatternOnStructuredGraph) {
  // K_4 on {0..3} plus tail 3-4-5. Wedges centered at node 3 include tail
  // combinations.
  Graph g = MakeGraph(6, {{0, 1},
                          {0, 2},
                          {0, 3},
                          {1, 2},
                          {1, 3},
                          {2, 3},
                          {3, 4},
                          {4, 5}});
  auto wedge = ParsePattern("PATTERN w {?A-?B; ?B-?C; SUBPATTERN mid {?B;}}");
  ASSERT_TRUE(wedge.ok());
  CensusOptions opts;
  opts.algorithm = CensusAlgorithm::kNdPvot;
  opts.k = 0;
  opts.subpattern = "mid";
  auto focal = AllNodes(g);
  auto result = RunCensus(g, *wedge, focal, opts);
  ASSERT_TRUE(result.ok());
  // Wedges centered at n = C(deg(n), 2).
  for (NodeId n = 0; n < 6; ++n) {
    EXPECT_EQ(result->counts[n], Choose(g.Degree(n), 2)) << "node " << n;
  }
}

TEST(GridGraphTest, SquaresInGrid) {
  // 4x4 grid: unit squares = 3*3 = 9; no triangles.
  const int w = 4;
  Graph g;
  g.AddNodes(w * w);
  for (int y = 0; y < w; ++y) {
    for (int x = 0; x < w; ++x) {
      NodeId n = y * w + x;
      if (x + 1 < w) g.AddEdge(n, n + 1);
      if (y + 1 < w) g.AddEdge(n, n + w);
    }
  }
  CheckOk(g.Finalize(), "test fixture setup");
  CnMatcher matcher;
  EXPECT_EQ(matcher.FindMatches(g, MakeSquare(false)).size(), 9u);
  EXPECT_EQ(matcher.FindMatches(g, MakeTriangle(false)).size(), 0u);
  // Each interior unit square is in the 1-hop ego net of... none of its
  // nodes' 1-hop neighborhoods contain the opposite corner (distance 2),
  // so counts at k=1 are 0; at k=2 a corner node of the grid sees exactly
  // one unit square.
  Pattern sqr = MakeSquare(false);
  auto focal = AllNodes(g);
  CensusOptions opts;
  opts.algorithm = CensusAlgorithm::kNdPvot;
  opts.k = 1;
  auto r1 = RunCensus(g, sqr, focal, opts);
  ASSERT_TRUE(r1.ok());
  for (NodeId n = 0; n < g.NumNodes(); ++n) EXPECT_EQ(r1->counts[n], 0u);
  opts.k = 2;
  auto r2 = RunCensus(g, sqr, focal, opts);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->counts[0], 1u);  // grid corner
}

}  // namespace
}  // namespace egocensus
