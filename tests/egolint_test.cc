// egolint over fixture snippets: one positive and one suppressed case per
// check, with exact finding counts and exit codes, plus the structural
// rules (ambiguous names, driven functions, directory scoping) that keep
// the checks useful on the real tree — and a full-repo smoke run asserting
// the tree lints clean inside the CI time budget.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "egolint.h"

namespace egolint {
namespace {

std::vector<Finding> Lint(std::vector<SourceFile> files) {
  return RunLint(files, LintOptions{});
}

// ---- status-discipline -------------------------------------------------

TEST(EgolintStatusTest, FlagsStatusFunctionWithoutNodiscard) {
  std::vector<Finding> findings = Lint({
      {"src/util/thing.h", "class Status;\nStatus Load();\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "status-discipline");
  EXPECT_EQ(findings[0].file, "src/util/thing.h");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("Load"), std::string::npos);
  EXPECT_EQ(ExitCodeFor(findings), 1);
}

TEST(EgolintStatusTest, NodiscardSuppressionWithReasonSilences) {
  std::vector<Finding> findings = Lint({
      {"src/util/thing.h",
       "class Status;\n"
       "// egolint: no-nodiscard(kept source-compatible for plugins)\n"
       "Status Load();\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
  EXPECT_EQ(ExitCodeFor(findings), 0);
}

TEST(EgolintStatusTest, FlagsDiscardedStatusCall) {
  std::vector<Finding> findings = Lint({
      {"src/util/thing.h", "class Status;\n[[nodiscard]] Status Save();\n"},
      {"src/util/user.cc", "void F() {\n  Save();\n}\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "status-discipline");
  EXPECT_EQ(findings[0].file, "src/util/user.cc");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(EgolintStatusTest, VoidCastIsStillADiscard) {
  std::vector<Finding> findings = Lint({
      {"src/util/thing.h", "class Status;\n[[nodiscard]] Status Save();\n"},
      {"src/util/user.cc", "void F() {\n  (void)Save();\n}\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("(void)"), std::string::npos);
}

TEST(EgolintStatusTest, DiscardSuppressionWithReasonSilences) {
  std::vector<Finding> findings = Lint({
      {"src/util/thing.h", "class Status;\n[[nodiscard]] Status Save();\n"},
      {"src/util/user.cc",
       "void F() {\n"
       "  Save();  // egolint: allow-discard(best-effort cache flush)\n"
       "}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintStatusTest, AmbiguousNameIsNotFlaggedAtCallSites) {
  // Graph::AddNode returns NodeId while DynamicGraph::AddNode returns
  // Result<NodeId>; a name-level pass must not guess which one a call site
  // resolves to.
  std::vector<Finding> findings = Lint({
      {"src/util/thing.h",
       "class Status;\n"
       "template <class T> class Result;\n"
       "[[nodiscard]] Result<int> AddNode(int label);\n"
       "int AddNode(int label, int weight);\n"},
      {"src/util/user.cc", "void F() {\n  AddNode(1, 2);\n}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

// ---- checkpoint-coverage -----------------------------------------------

constexpr const char* kUnpolledLoop =
    "void Run() {\n"
    "  for (int i = 0; i < num_focal; ++i) {\n"
    "    Work(focal[i]);\n"
    "  }\n"
    "}\n";

TEST(EgolintCheckpointTest, FlagsUnpolledFocalLoopInCheckedDir) {
  std::vector<Finding> findings =
      Lint({{"src/census/fake_engine.cc", kUnpolledLoop}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "checkpoint-coverage");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_EQ(ExitCodeFor(findings), 1);
}

TEST(EgolintCheckpointTest, OutsideCheckedDirsIsExempt) {
  std::vector<Finding> findings =
      Lint({{"src/graph/fake_engine.cc", kUnpolledLoop}});
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintCheckpointTest, DirectPollPasses) {
  std::vector<Finding> findings = Lint({
      {"src/census/fake_engine.cc",
       "void Run() {\n"
       "  for (int i = 0; i < num_focal; ++i) {\n"
       "    if (gov->Checkpoint() != StopReason::kNone) return;\n"
       "    Work(focal[i]);\n"
       "  }\n"
       "}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintCheckpointTest, LoopInsideDrivenLambdaIsCovered) {
  // The engines' split: the driver loop polls per item and hands the item
  // to `process`; loops inside `process` ride on the driver's poll.
  std::vector<Finding> findings = Lint({
      {"src/census/fake_engine.cc",
       "void Run() {\n"
       "  auto process = [&](int n) {\n"
       "    for (int j = 0; j < n; ++j) Touch(matches[j]);\n"
       "  };\n"
       "  for (int i = 0; i < num_focal; ++i) {\n"
       "    if (gov->Checkpoint() != StopReason::kNone) return;\n"
       "    process(focal[i]);\n"
       "  }\n"
       "}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintCheckpointTest, RemovingTheDriverPollUnrootsTheDrivenChain) {
  // Same shape as above minus the poll: both the driver loop and the loop
  // inside `process` must fire, mirroring the CI demo of deleting a
  // Checkpoint from an ND engine.
  std::vector<Finding> findings = Lint({
      {"src/census/fake_engine.cc",
       "void Run() {\n"
       "  auto process = [&](int n) {\n"
       "    for (int j = 0; j < n; ++j) Touch(matches[j]);\n"
       "  };\n"
       "  for (int i = 0; i < num_focal; ++i) {\n"
       "    process(focal[i]);\n"
       "  }\n"
       "}\n"},
  });
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].check, "checkpoint-coverage");
  EXPECT_EQ(findings[1].check, "checkpoint-coverage");
}

TEST(EgolintCheckpointTest, SuppressionWithReasonSilences) {
  std::vector<Finding> findings = Lint({
      {"src/census/fake_engine.cc",
       "void Run() {\n"
       "  // egolint: no-checkpoint(O(|focal|) flag stores, no match work)\n"
       "  for (int i = 0; i < num_focal; ++i) {\n"
       "    Work(focal[i]);\n"
       "  }\n"
       "}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

// ---- obs-gating ---------------------------------------------------------

TEST(EgolintObsTest, FlagsUngatedObsInternalReference) {
  std::vector<Finding> findings = Lint({
      {"src/census/user.cc", "void F() {\n  obs::Registry::Global();\n}\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "obs-gating");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("Registry"), std::string::npos);
}

TEST(EgolintObsTest, PreprocessorGateSilences) {
  std::vector<Finding> findings = Lint({
      {"src/census/user.cc",
       "void F() {\n"
       "#if EGO_OBS_ENABLED\n"
       "  obs::Registry::Global();\n"
       "#endif\n"
       "}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintObsTest, ElseBranchOfGateIsNotGated) {
  std::vector<Finding> findings = Lint({
      {"src/census/user.cc",
       "void F() {\n"
       "#if EGO_OBS_ENABLED\n"
       "  Fine();\n"
       "#else\n"
       "  obs::Registry::Global();\n"
       "#endif\n"
       "}\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 5);
}

TEST(EgolintObsTest, SelfGatedSurfaceIsExempt) {
  std::vector<Finding> findings = Lint({
      {"src/census/user.cc",
       "void F() {\n"
       "  obs::CounterAdd(\"census/runs\", 1);\n"
       "  obs::ScopedSpan span(\"census/count\");\n"
       "  if (obs::Enabled()) Report();\n"
       "}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintObsTest, ObsDirectoryItselfIsExempt) {
  std::vector<Finding> findings = Lint({
      {"src/obs/metrics.cc", "void F() {\n  obs::Registry::Global();\n}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintObsTest, SuppressionWithReasonSilences) {
  std::vector<Finding> findings = Lint({
      {"src/census/user.cc",
       "void F() {\n"
       "  // egolint: allow-obs(export path, only reachable from the CLI)\n"
       "  obs::Registry::Global();\n"
       "}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

// ---- request-discipline ---------------------------------------------------

TEST(EgolintRequestTest, FlagsHandlerWithoutRequestContext) {
  std::vector<Finding> findings = Lint({
      {"src/net/server.cc",
       "Message CensusServer::HandleStatus(const Message& request) {\n"
       "  return StatusResponse();\n"
       "}\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "request-discipline");
  EXPECT_EQ(findings[0].file, "src/net/server.cc");
  EXPECT_NE(findings[0].message.find("HandleStatus"), std::string::npos);
}

TEST(EgolintRequestTest, ContextParameterInSignaturePasses) {
  std::vector<Finding> findings = Lint({
      {"src/net/server.cc",
       "Message CensusServer::HandleStatus(const Message& request,\n"
       "                                   RequestContext& ctx) {\n"
       "  return StatusResponse();\n"
       "}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintRequestTest, ContextUseInBodyPasses) {
  std::vector<Finding> findings = Lint({
      {"src/net/server.cc",
       "Message CensusServer::HandleStatus(const Message& request) {\n"
       "  RequestContext ctx = MakeContext(request);\n"
       "  return StatusResponse(ctx);\n"
       "}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintRequestTest, OutsideNetDirIsExempt) {
  std::vector<Finding> findings = Lint({
      {"src/lang/engine.cc",
       "Value HandleAggregate(const Expr& e) {\n  return Eval(e);\n}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintRequestTest, NonHandlerNamesAreExempt) {
  std::vector<Finding> findings = Lint({
      {"src/net/socket.cc",
       "int HandshakeTimeout() {\n  return 5;\n}\n"
       "void handle_signal(int) {\n}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintRequestTest, SuppressionWithReasonSilences) {
  std::vector<Finding> findings = Lint({
      {"src/net/server.cc",
       "// egolint: no-request-context(internal retry path, not a dispatch "
       "target)\n"
       "Message CensusServer::HandlePing(const Message& request) {\n"
       "  return Pong();\n"
       "}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintRequestTest, FlagsBareBusyAndErrorComposition) {
  std::vector<Finding> findings = Lint({
      {"src/net/server.cc",
       "void F(Message& response) {\n"
       "  response.type = FrameType::kBusy;\n"
       "  response.type = FrameType::kError;\n"
       "}\n"},
  });
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].check, "request-discipline");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("kBusy"), std::string::npos);
  EXPECT_NE(findings[1].message.find("kError"), std::string::npos);
  EXPECT_NE(findings[0].message.find("request_context.h"), std::string::npos);
}

TEST(EgolintRequestTest, ComparisonsAndCaseLabelsAreNotComposition) {
  std::vector<Finding> findings = Lint({
      {"src/net/client.cc",
       "int F(const Message& m) {\n"
       "  if (m.type == FrameType::kBusy) return 1;\n"
       "  if (m.type != FrameType::kError) return 2;\n"
       "  switch (m.type) {\n"
       "    case FrameType::kBusy: return 3;\n"
       "    case FrameType::kError: return 4;\n"
       "    default: return 0;\n"
       "  }\n"
       "}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintRequestTest, HelperFilesMayComposeBusyAndError) {
  std::vector<Finding> findings = Lint({
      {"src/net/request_context.h",
       "inline Message BusyResponse() {\n"
       "  Message response;\n"
       "  response.type = FrameType::kBusy;\n"
       "  return response;\n"
       "}\n"},
      {"src/net/frame.h", "struct Message {\n  FrameType type = FrameType::kError;\n};\n"},
      {"src/lang/engine.cc",
       "void G(Message& m) {\n  m.type = FrameType::kError;\n}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintRequestTest, BareCompositionSuppressionSilences) {
  std::vector<Finding> findings = Lint({
      {"src/net/server.cc",
       "void F(Message& response) {\n"
       "  // egolint: allow-bare-response(fuzzer stub, fields unused)\n"
       "  response.type = FrameType::kError;\n"
       "}\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

// ---- include-hygiene ----------------------------------------------------

TEST(EgolintIncludeTest, FlagsHeaderIncludeCycleOnce) {
  std::vector<Finding> findings = Lint({
      {"src/graph/a.h", "#include \"graph/b.h\"\nint A();\n"},
      {"src/graph/b.h", "#include \"graph/a.h\"\nint B();\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "include-hygiene");
  EXPECT_NE(findings[0].message.find("cycle"), std::string::npos);
}

TEST(EgolintIncludeTest, AcyclicIncludesAreClean) {
  std::vector<Finding> findings = Lint({
      {"src/graph/a.h", "#include \"graph/b.h\"\nint A();\n"},
      {"src/graph/b.h", "int B();\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintIncludeTest, FlagsUsingNamespaceInHeaderOnly) {
  std::vector<Finding> findings = Lint({
      {"src/graph/a.h", "using namespace std;\n"},
      {"src/graph/a.cc", "using namespace std;\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/graph/a.h");
  EXPECT_EQ(findings[0].check, "include-hygiene");
}

TEST(EgolintIncludeTest, SuppressionWithReasonSilences) {
  std::vector<Finding> findings = Lint({
      {"src/graph/a.h",
       "// egolint: allow-using-namespace(test-only convenience header)\n"
       "using namespace std;\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

// ---- lock-discipline ----------------------------------------------------

TEST(EgolintLockTest, FlagsRawStdMutexOutsideUtil) {
  std::vector<Finding> findings = Lint({
      {"src/net/session.h",
       "#include <mutex>\n"
       "class Session {\n"
       "  std::mutex mu_;\n"
       "};\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "lock-discipline");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("util/mutex.h"), std::string::npos);
  EXPECT_EQ(ExitCodeFor(findings), 1);
}

TEST(EgolintLockTest, FlagsRawSharedMutexToo) {
  std::vector<Finding> findings = Lint({
      {"src/net/entry.h", "struct E {\n  std::shared_mutex mu;\n};\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("shared_mutex"), std::string::npos);
}

TEST(EgolintLockTest, UtilDirectoryMayUseRawMutexes) {
  // util/mutex.h is where the annotated wrappers wrap the raw types.
  std::vector<Finding> findings = Lint({
      {"src/util/mutex.h", "class Mutex {\n  std::mutex mu_;\n};\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintLockTest, RawMutexSuppressionWithReasonSilences) {
  std::vector<Finding> findings = Lint({
      {"src/net/session.h",
       "class Session {\n"
       "  // egolint: allow-raw-mutex(interops with a C callback API)\n"
       "  std::mutex mu_;\n"
       "};\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintLockTest, FlagsUnannotatedMemberOfLockOwningClass) {
  std::vector<Finding> findings = Lint({
      {"src/net/cache.h",
       "class Cache {\n"
       "  Mutex mu_;\n"
       "  std::vector<int> entries_ EGO_GUARDED_BY(mu_);\n"
       "  int hits_ = 0;\n"
       "};\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "lock-discipline");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("hits_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Cache"), std::string::npos);
  EXPECT_NE(findings[0].message.find("EGO_GUARDED_BY"), std::string::npos);
}

TEST(EgolintLockTest, NoGuardSuppressionWithReasonSilences) {
  std::vector<Finding> findings = Lint({
      {"src/net/cache.h",
       "class Cache {\n"
       "  Mutex mu_;\n"
       "  // egolint: no-guard(written once before threads start)\n"
       "  int hits_ = 0;\n"
       "};\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintLockTest, ReasonlessNoGuardIsAFindingAndDoesNotHide) {
  std::vector<Finding> findings = Lint({
      {"src/net/cache.h",
       "class Cache {\n"
       "  Mutex mu_;\n"
       "  // egolint: no-guard()\n"
       "  int hits_ = 0;\n"
       "};\n"},
  });
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].check, "suppression");
  EXPECT_EQ(findings[1].check, "lock-discipline");
}

TEST(EgolintLockTest, SelfSynchronizingAndConstMembersAreExempt) {
  std::vector<Finding> findings = Lint({
      {"src/net/cache.h",
       "class Cache {\n"
       "  mutable Mutex mu_;\n"
       "  SharedMutex data_mu_;\n"
       "  std::condition_variable cv_;\n"
       "  std::atomic<int> fast_{0};\n"
       "  std::array<std::atomic<int>, 4> tallies_{};\n"
       "  const std::string name_;\n"
       "  static constexpr int kLimit = 8;\n"
       "  int guarded_ EGO_GUARDED_BY(mu_);\n"
       "};\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintLockTest, MemberFunctionsAndNestedTypesAreNotMembers) {
  std::vector<Finding> findings = Lint({
      {"src/net/cache.h",
       "class Cache {\n"
       " public:\n"
       "  Cache() : guarded_(0) {}\n"
       "  void Touch() { ++guarded_; }\n"
       "  int Peek() const;\n"
       "  using Clock = std::chrono::steady_clock;\n"
       "  struct Stats { int hits = 0; };\n"
       " private:\n"
       "  Mutex mu_;\n"
       "  int guarded_ EGO_GUARDED_BY(mu_);\n"
       "};\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintLockTest, ClassHoldingOnlyACapabilityReferenceIsExempt) {
  // A scoped-lock style class references a capability it does not own;
  // its book-keeping members are owner-thread state, not shared state.
  std::vector<Finding> findings = Lint({
      {"src/net/scoped.h",
       "class Scoped {\n"
       "  Mutex& mu_;\n"
       "  bool held_ = true;\n"
       "};\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

TEST(EgolintLockTest, ClassWithoutALockIsExempt) {
  std::vector<Finding> findings = Lint({
      {"src/net/plain.h", "struct Plain {\n  int x = 0;\n  int y = 0;\n};\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

// ---- suppression audit --------------------------------------------------

TEST(EgolintSuppressionTest, UnknownSuppressionNameIsAFinding) {
  std::vector<Finding> findings = Lint({
      {"src/graph/a.cc", "// egolint: no-such-check(whatever)\nint x;\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "suppression");
  EXPECT_NE(findings[0].message.find("no-such-check"), std::string::npos);
}

TEST(EgolintSuppressionTest, ReasonlessSuppressionIsAFindingAndDoesNotHide) {
  // A reasonless no-checkpoint neither counts as an audit-clean
  // suppression nor silences the loop it sits on.
  std::vector<Finding> findings = Lint({
      {"src/census/fake_engine.cc",
       "void Run() {\n"
       "  // egolint: no-checkpoint()\n"
       "  for (int i = 0; i < num_focal; ++i) Work(focal[i]);\n"
       "}\n"},
  });
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].check, "suppression");
  EXPECT_EQ(findings[1].check, "checkpoint-coverage");
}

TEST(EgolintSuppressionTest, ProseMentioningEgolintIsNotASuppression) {
  std::vector<Finding> findings = Lint({
      {"src/graph/a.cc",
       "// This call is checked by egolint: status-discipline covers it.\n"
       "int x;\n"},
  });
  EXPECT_EQ(findings.size(), 0u);
}

// ---- driver plumbing ----------------------------------------------------

TEST(EgolintDriverTest, CheckFilterRunsOnlySelectedChecks) {
  LintOptions options;
  options.checks = {"obs-gating"};
  std::vector<Finding> findings = RunLint(
      {
          {"src/util/thing.h", "class Status;\nStatus Load();\n"},
          {"src/census/user.cc",
           "void F() {\n  obs::Registry::Global();\n}\n"},
      },
      options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "obs-gating");
}

TEST(EgolintDriverTest, KnownCheckNames) {
  EXPECT_TRUE(IsKnownCheck("status-discipline"));
  EXPECT_TRUE(IsKnownCheck("checkpoint-coverage"));
  EXPECT_TRUE(IsKnownCheck("obs-gating"));
  EXPECT_TRUE(IsKnownCheck("include-hygiene"));
  EXPECT_TRUE(IsKnownCheck("request-discipline"));
  EXPECT_TRUE(IsKnownCheck("lock-discipline"));
  EXPECT_FALSE(IsKnownCheck("made-up"));
}

TEST(EgolintDriverTest, FormatAndJsonCarryFileLineCheck) {
  Finding f{"src/a.cc", 7, "obs-gating", "allow-obs", "msg"};
  EXPECT_EQ(FormatFinding(f), "src/a.cc:7: [obs-gating] msg");
  std::string json = FindingsToJson({f});
  EXPECT_NE(json.find("\"file\": \"src/a.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

// ---- full-repo smoke ----------------------------------------------------

#ifdef EGOCENSUS_REPO_SRC
TEST(EgolintRepoTest, RepoLintsCleanWithinBudget) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  std::vector<fs::path> roots = {EGOCENSUS_REPO_SRC};
#ifdef EGOCENSUS_REPO_TOOLS
  // The linter's own sources (and the CLI) live by the rules they enforce.
  roots.emplace_back(EGOCENSUS_REPO_TOOLS);
#endif
  for (const fs::path& root : roots) {
    for (auto it = fs::recursive_directory_iterator(root);
         it != fs::recursive_directory_iterator(); ++it) {
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      std::ifstream in(it->path());
      std::ostringstream content;
      content << in.rdbuf();
      files.push_back(SourceFile{it->path().generic_string(), content.str()});
    }
  }
  ASSERT_GT(files.size(), 50u) << "repo scan found suspiciously few files";

  auto begin = std::chrono::steady_clock::now();
  std::vector<Finding> findings = Lint(std::move(files));
  auto elapsed = std::chrono::steady_clock::now() - begin;

  for (const Finding& f : findings) {
    ADD_FAILURE() << FormatFinding(f);
  }
  EXPECT_EQ(ExitCodeFor(findings), 0);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000)
      << "full-repo lint must stay inside the 2s CI smoke budget";
}
#endif  // EGOCENSUS_REPO_SRC

}  // namespace
}  // namespace egolint
