#include "pattern/pattern_parser.h"

#include <gtest/gtest.h>

namespace egocensus {
namespace {

Pattern MustParse(std::string_view text) {
  auto r = ParsePattern(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : Pattern();
}

TEST(PatternParserTest, SingleNode) {
  Pattern p = MustParse("PATTERN single_node {?A;}");
  EXPECT_EQ(p.name(), "single_node");
  EXPECT_EQ(p.NumNodes(), 1);
  EXPECT_TRUE(p.prepared());
}

TEST(PatternParserTest, SingleEdge) {
  Pattern p = MustParse("PATTERN single_edge {?A-?B;}");
  EXPECT_EQ(p.NumNodes(), 2);
  EXPECT_EQ(p.PositiveEdges().size(), 1u);
  EXPECT_FALSE(p.PositiveEdges()[0].directed);
}

TEST(PatternParserTest, SquareFromTableOne) {
  Pattern p = MustParse(
      "PATTERN square {\n"
      "  ?A-?B; ?B-?C;\n"
      "  ?C-?D; ?D-?A;\n"
      "}");
  EXPECT_EQ(p.NumNodes(), 4);
  EXPECT_EQ(p.PositiveEdges().size(), 4u);
  EXPECT_EQ(p.NumAutomorphisms(), 8u);
}

TEST(PatternParserTest, CoordinatorTriadFromTableOne) {
  Pattern p = MustParse(
      "PATTERN triad {\n"
      "  ?A->?B; ?B->?C; ?A!->?C;\n"
      "  [?A.LABEL=?B.LABEL];\n"
      "  [?B.LABEL=?C.LABEL];\n"
      "  SUBPATTERN coordinator {?B;}\n"
      "}");
  EXPECT_EQ(p.NumNodes(), 3);
  EXPECT_EQ(p.PositiveEdges().size(), 2u);
  ASSERT_EQ(p.NegativeEdges().size(), 1u);
  EXPECT_TRUE(p.NegativeEdges()[0].directed);
  EXPECT_EQ(p.Predicates().size(), 2u);
  const auto* sub = p.FindSubpattern("coordinator");
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->size(), 1u);
  EXPECT_EQ((*sub)[0], p.FindNode("B"));
}

TEST(PatternParserTest, ReversedEdge) {
  Pattern p = MustParse("PATTERN rev {?A<-?B;}");
  ASSERT_EQ(p.PositiveEdges().size(), 1u);
  const auto& e = p.PositiveEdges()[0];
  EXPECT_TRUE(e.directed);
  EXPECT_EQ(e.src, p.FindNode("B"));
  EXPECT_EQ(e.dst, p.FindNode("A"));
}

TEST(PatternParserTest, NegatedUndirectedEdge) {
  Pattern p = MustParse("PATTERN neg {?A-?B; ?B-?C; ?A!-?C;}");
  ASSERT_EQ(p.NegativeEdges().size(), 1u);
  EXPECT_FALSE(p.NegativeEdges()[0].directed);
}

TEST(PatternParserTest, LabelConstantCompiledToConstraint) {
  Pattern p = MustParse("PATTERN lab {?A-?B; [?A.LABEL=2]; [?B.LABEL=0];}");
  EXPECT_TRUE(p.Predicates().empty());  // compiled away
  EXPECT_EQ(p.LabelConstraint(p.FindNode("A")), Label{2});
  EXPECT_EQ(p.LabelConstraint(p.FindNode("B")), Label{0});
}

TEST(PatternParserTest, ConstantOnLeftAlsoCompiled) {
  Pattern p = MustParse("PATTERN lab {?A-?B; [1 = ?A.LABEL];}");
  EXPECT_TRUE(p.Predicates().empty());
  EXPECT_EQ(p.LabelConstraint(p.FindNode("A")), Label{1});
}

TEST(PatternParserTest, GeneralPredicateKept) {
  Pattern p = MustParse("PATTERN gen {?A-?B; [?A.AGE >= 18];}");
  ASSERT_EQ(p.Predicates().size(), 1u);
  EXPECT_EQ(p.Predicates()[0].op, PredicateOp::kGe);
  EXPECT_TRUE(p.HasGeneralPredicates());
}

TEST(PatternParserTest, EdgeAttributePredicate) {
  Pattern p = MustParse("PATTERN sgn {?A-?B; [EDGE(?A,?B).SIGN = -1];}");
  ASSERT_EQ(p.Predicates().size(), 1u);
  const auto* eref = std::get_if<EdgeAttrRef>(&p.Predicates()[0].lhs);
  ASSERT_NE(eref, nullptr);
  EXPECT_EQ(eref->attr, "SIGN");
  const auto* val = std::get_if<AttributeValue>(&p.Predicates()[0].rhs);
  ASSERT_NE(val, nullptr);
  EXPECT_EQ(std::get<std::int64_t>(*val), -1);
}

TEST(PatternParserTest, StringPredicate) {
  Pattern p = MustParse("PATTERN s {?A-?B; [?A.CITY = 'nyc'];}");
  ASSERT_EQ(p.Predicates().size(), 1u);
  const auto* val = std::get_if<AttributeValue>(&p.Predicates()[0].rhs);
  ASSERT_NE(val, nullptr);
  EXPECT_EQ(std::get<std::string>(*val), "nyc");
}

TEST(PatternParserTest, MultiplePatterns) {
  auto r = ParsePatterns(
      "PATTERN a {?X;} PATTERN b {?X-?Y;} PATTERN c {?X-?Y; ?Y-?Z;}");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0].name(), "a");
  EXPECT_EQ((*r)[2].NumNodes(), 3);
}

TEST(PatternParserTest, ErrorMissingBrace) {
  EXPECT_FALSE(ParsePattern("PATTERN x {?A-?B;").ok());
}

TEST(PatternParserTest, ErrorSelfLoop) {
  EXPECT_FALSE(ParsePattern("PATTERN x {?A-?A;}").ok());
}

TEST(PatternParserTest, ErrorMissingSemicolon) {
  EXPECT_FALSE(ParsePattern("PATTERN x {?A-?B}").ok());
}

TEST(PatternParserTest, ErrorDisconnected) {
  EXPECT_FALSE(ParsePattern("PATTERN x {?A-?B; ?C-?D;}").ok());
}

TEST(PatternParserTest, ErrorUnknownSubpatternVar) {
  EXPECT_FALSE(
      ParsePattern("PATTERN x {?A-?B; SUBPATTERN s {?Z;}}").ok());
}

TEST(PatternParserTest, ErrorTrailingInput) {
  EXPECT_FALSE(ParsePattern("PATTERN x {?A;} garbage").ok());
}

TEST(PatternParserTest, ErrorBadPredicate) {
  EXPECT_FALSE(ParsePattern("PATTERN x {?A-?B; [?A.L ?B.L];}").ok());
}

}  // namespace
}  // namespace egocensus
