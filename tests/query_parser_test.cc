#include "lang/query_parser.h"

#include <gtest/gtest.h>

namespace egocensus {
namespace {

Query MustParse(std::string_view text) {
  auto r = ParseQuery(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : Query();
}

TEST(QueryParserTest, TableOneRowOne) {
  Query q = MustParse(
      "PATTERN single_node {?A;}\n"
      "SELECT ID, COUNTP(single_node, SUBGRAPH(ID, 2)) FROM nodes");
  ASSERT_EQ(q.patterns.size(), 1u);
  ASSERT_EQ(q.select.size(), 2u);
  EXPECT_EQ(q.select[0].kind, SelectItem::Kind::kId);
  ASSERT_EQ(q.select[1].kind, SelectItem::Kind::kCount);
  EXPECT_EQ(q.select[1].count.pattern, "single_node");
  EXPECT_EQ(q.select[1].count.neighborhood.k, 2u);
  EXPECT_EQ(q.select[1].count.neighborhood.kind,
            NeighborhoodSpec::Kind::kSubgraph);
  EXPECT_EQ(q.from_aliases.size(), 1u);
  EXPECT_EQ(q.where, nullptr);
}

TEST(QueryParserTest, TableOneRowTwoPairwise) {
  Query q = MustParse(
      "PATTERN single_edge {?A-?B;}\n"
      "SELECT n1.ID, n2.ID,\n"
      "  COUNTP(single_edge, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1))\n"
      "FROM nodes AS n1, nodes AS n2");
  ASSERT_EQ(q.from_aliases.size(), 2u);
  EXPECT_EQ(q.from_aliases[0], "n1");
  EXPECT_EQ(q.from_aliases[1], "n2");
  ASSERT_EQ(q.select.size(), 3u);
  EXPECT_EQ(q.select[0].alias, "n1");
  const auto& spec = q.select[2].count.neighborhood;
  EXPECT_EQ(spec.kind, NeighborhoodSpec::Kind::kIntersection);
  EXPECT_EQ(spec.ref1, "n1");
  EXPECT_EQ(spec.ref2, "n2");
  EXPECT_EQ(spec.k, 1u);
}

TEST(QueryParserTest, TableOneRowFourCountSp) {
  Query q = MustParse(
      "PATTERN triad {\n"
      "  ?A->?B; ?B->?C; ?A!->?C;\n"
      "  [?A.LABEL=?B.LABEL]; [?B.LABEL=?C.LABEL];\n"
      "  SUBPATTERN coordinator {?B;}\n"
      "}\n"
      "SELECT ID, COUNTSP(coordinator, triad, SUBGRAPH(ID, 0)) FROM nodes");
  ASSERT_EQ(q.select.size(), 2u);
  const auto& count = q.select[1].count;
  EXPECT_TRUE(count.count_subpattern);
  EXPECT_EQ(count.subpattern, "coordinator");
  EXPECT_EQ(count.pattern, "triad");
  EXPECT_EQ(count.neighborhood.k, 0u);
}

TEST(QueryParserTest, WhereRndSelectivity) {
  Query q = MustParse(
      "PATTERN p {?A;} SELECT ID, COUNTP(p, SUBGRAPH(ID, 2)) FROM nodes "
      "WHERE RND() < 0.2");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind, WhereExpr::Kind::kCompare);
  EXPECT_EQ(q.where->lhs.kind, WhereOperand::Kind::kRand);
  EXPECT_EQ(q.where->op, PredicateOp::kLt);
  EXPECT_DOUBLE_EQ(std::get<double>(q.where->rhs.value), 0.2);
}

TEST(QueryParserTest, WhereBooleanStructure) {
  Query q = MustParse(
      "SELECT ID FROM nodes WHERE LABEL = 1 AND (ID < 50 OR NOT DEGREE >= "
      "3)");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind, WhereExpr::Kind::kAnd);
  EXPECT_EQ(q.where->left->kind, WhereExpr::Kind::kCompare);
  EXPECT_EQ(q.where->right->kind, WhereExpr::Kind::kOr);
  EXPECT_EQ(q.where->right->right->kind, WhereExpr::Kind::kNot);
}

TEST(QueryParserTest, WherePairPredicate) {
  Query q = MustParse(
      "PATTERN p {?A;} SELECT n1.ID, n2.ID, "
      "COUNTP(p, SUBGRAPH-UNION(n1.ID, n2.ID, 2)) "
      "FROM nodes AS n1, nodes AS n2 WHERE n1.ID > n2.ID");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->lhs.alias, "n1");
  EXPECT_EQ(q.where->lhs.attr, "ID");
  EXPECT_EQ(q.where->op, PredicateOp::kGt);
}

TEST(QueryParserTest, NegativeConstant) {
  Query q = MustParse("SELECT ID FROM nodes WHERE SCORE > -2");
  EXPECT_EQ(std::get<std::int64_t>(q.where->rhs.value), -2);
}

TEST(QueryParserTest, StringConstant) {
  Query q = MustParse("SELECT ID FROM nodes WHERE CITY = 'nyc'");
  EXPECT_EQ(std::get<std::string>(q.where->rhs.value), "nyc");
}

TEST(QueryParserTest, TrailingSemicolonAccepted) {
  MustParse("SELECT ID FROM nodes;");
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("SELECT FROM nodes").ok());
  EXPECT_FALSE(ParseQuery("SELECT ID").ok());
  EXPECT_FALSE(ParseQuery("SELECT ID FROM edges").ok());
  EXPECT_FALSE(ParseQuery("SELECT ID FROM nodes WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNTP(p) FROM nodes").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT COUNTP(p, SUBGRAPH(ID, -1)) FROM nodes").ok());
  EXPECT_FALSE(ParseQuery("SELECT ID FROM nodes garbage").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT ID FROM nodes AS a, nodes AS b, nodes AS c").ok());
}

}  // namespace
}  // namespace egocensus
