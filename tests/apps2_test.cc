// Tests for the brokerage and node-signature application libraries, plus a
// fidelity check for Section II's claim that the Jaccard coefficient is
// expressible as node-pattern censuses over intersection and union
// neighborhoods.

#include <gtest/gtest.h>

#include "apps/brokerage.h"
#include "apps/link_prediction.h"
#include "apps/signatures.h"
#include "census/pairwise.h"
#include "graph/generators.h"
#include "match/cn_matcher.h"
#include "pattern/catalog.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace egocensus {
namespace {

using testing::MakeGraph;

// ---- Brokerage ----

TEST(BrokerageTest, RolesClassifiedCorrectly) {
  // Orgs: 0 -> org0, 1 -> org0, 2 -> org0, 3 -> org1, 4 -> org2.
  Graph g(true);
  g.AddNodes(5);
  CheckOk(g.SetLabel(0, 0), "test fixture setup");
  CheckOk(g.SetLabel(1, 0), "test fixture setup");
  CheckOk(g.SetLabel(2, 0), "test fixture setup");
  CheckOk(g.SetLabel(3, 1), "test fixture setup");
  CheckOk(g.SetLabel(4, 2), "test fixture setup");
  g.AddEdge(0, 1);  // org0 -> org0
  g.AddEdge(1, 2);  // 0->1->2: coordinator at 1 (all org0)
  g.AddEdge(3, 1);  // org1 -> org0; 3->1->2: gatekeeper at 1
  g.AddEdge(1, 3);  // 0->1->3: representative at 1 (A,B org0; C org1)
  g.AddEdge(3, 4);  // 1->3->4: liaison at 3 (org0, org1, org2)
  CheckOk(g.Finalize(), "test fixture setup");

  auto result = ComputeBrokerage(g, CensusOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto at = [&](NodeId n, BrokerageRole role) {
    return result->counts[n][static_cast<int>(role)];
  };
  EXPECT_EQ(at(1, BrokerageRole::kCoordinator), 1u);  // 0->1->2
  EXPECT_EQ(at(1, BrokerageRole::kGatekeeper), 1u);   // 3->1->2
  EXPECT_EQ(at(1, BrokerageRole::kRepresentative), 1u);  // 0->1->3
  EXPECT_EQ(at(3, BrokerageRole::kLiaison), 1u);      // 1->3->4
  EXPECT_EQ(at(0, BrokerageRole::kCoordinator), 0u);
}

TEST(BrokerageTest, ConsultantRole) {
  // A and C in org 0, broker B in org 1: consultant.
  Graph g(true);
  g.AddNodes(3);
  CheckOk(g.SetLabel(0, 0), "test fixture setup");
  CheckOk(g.SetLabel(1, 1), "test fixture setup");
  CheckOk(g.SetLabel(2, 0), "test fixture setup");
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  CheckOk(g.Finalize(), "test fixture setup");
  auto result = ComputeBrokerage(g, CensusOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->counts[1][static_cast<int>(BrokerageRole::kConsultant)],
            1u);
  EXPECT_EQ(result->counts[1][static_cast<int>(BrokerageRole::kLiaison)], 0u);
}

TEST(BrokerageTest, ClosedTriadNotBrokered) {
  // A -> C shortcut closes the triad: no brokerage.
  Graph g(true);
  g.AddNodes(3);
  for (NodeId n = 0; n < 3; ++n) CheckOk(g.SetLabel(n, 0), "test fixture setup");
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(0, 2);
  CheckOk(g.Finalize(), "test fixture setup");
  auto result = ComputeBrokerage(g, CensusOptions());
  ASSERT_TRUE(result.ok());
  for (int r = 0; r < kNumBrokerageRoles; ++r) {
    EXPECT_EQ(result->counts[1][r], 0u);
  }
}

TEST(BrokerageTest, RolesPartitionOpenTriads) {
  // On a random directed labeled graph, summing the five roles over a
  // broker equals its total open-triad count.
  Graph g = GenerateErdosRenyi(60, 240, 3, 55, /*directed=*/true);
  auto result = ComputeBrokerage(g, CensusOptions());
  ASSERT_TRUE(result.ok());

  // Independent count of open triads per middle node.
  std::vector<std::uint64_t> open_triads(g.NumNodes(), 0);
  for (NodeId b = 0; b < g.NumNodes(); ++b) {
    for (NodeId a : g.InNeighbors(b)) {
      for (NodeId c : g.OutNeighbors(b)) {
        if (a == c || a == b || c == b) continue;
        if (!g.HasEdge(a, c)) ++open_triads[b];
      }
    }
  }
  for (NodeId b = 0; b < g.NumNodes(); ++b) {
    std::uint64_t total = 0;
    for (int r = 0; r < kNumBrokerageRoles; ++r) total += result->counts[b][r];
    EXPECT_EQ(total, open_triads[b]) << "node " << b;
  }
}

TEST(BrokerageTest, UndirectedGraphRejected) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  EXPECT_FALSE(ComputeBrokerage(g, CensusOptions()).ok());
}

// ---- Node signatures ----

TEST(SignaturesTest, SignatureValuesMatchDirectCensus) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  std::vector<Pattern> patterns;
  patterns.push_back(MakeSingleEdge());
  patterns.push_back(MakeTriangle(false));
  auto signatures = BuildNodeSignatures(g, patterns, SignatureOptions());
  ASSERT_TRUE(signatures.ok());
  // Node 2's 1-hop ego net = whole graph: 4 edges, 1 triangle.
  EXPECT_EQ((*signatures)[2][0], 4u);
  EXPECT_EQ((*signatures)[2][1], 1u);
  // Node 3's ego net = {2, 3}: one edge, no triangle.
  EXPECT_EQ((*signatures)[3][0], 1u);
  EXPECT_EQ((*signatures)[3][1], 0u);
}

TEST(SignaturesTest, PatternToGraphSkeleton) {
  Pattern tri = MakeTriangle(true);
  Graph skeleton = PatternToGraph(tri);
  EXPECT_EQ(skeleton.NumNodes(), 3u);
  EXPECT_EQ(skeleton.NumEdges(), 3u);
  EXPECT_EQ(skeleton.label(0), 0u);
  EXPECT_EQ(skeleton.label(2), 2u);
}

TEST(SignaturesTest, FilterIsSoundForCliqueQuery) {
  GeneratorOptions gen;
  gen.num_nodes = 400;
  gen.edges_per_node = 5;
  gen.seed = 17;
  Graph g = GeneratePreferentialAttachment(gen);

  std::vector<Pattern> patterns;
  patterns.push_back(MakeSingleEdge());
  patterns.push_back(MakeTriangle(false));
  SignatureOptions options;
  auto signatures = BuildNodeSignatures(g, patterns, options);
  ASSERT_TRUE(signatures.ok());

  Pattern clq4 = MakeClique4(false);
  auto role_sig = RoleSignature(clq4, 0, patterns, options);
  ASSERT_TRUE(role_sig.ok());
  // A clq4 node's 1-hop ego network is the whole K4: 6 edges, 4 triangles.
  EXPECT_EQ((*role_sig)[0], 6u);
  EXPECT_EQ((*role_sig)[1], 4u);

  auto candidates = FilterCandidatesBySignature(*signatures, *role_sig);
  std::vector<char> is_candidate(g.NumNodes(), 0);
  for (NodeId n : candidates) is_candidate[n] = 1;

  // Soundness: every node participating in a real 4-clique must survive.
  CnMatcher matcher;
  MatchSet matches = matcher.FindMatches(g, clq4);
  for (std::size_t m = 0; m < matches.size(); ++m) {
    for (NodeId n : matches.Match(m)) {
      EXPECT_TRUE(is_candidate[n]) << "node " << n << " wrongly pruned";
    }
  }
  // And the filter should actually prune something.
  EXPECT_LT(candidates.size(), g.NumNodes());
}

TEST(SignaturesTest, RoleOutOfRange) {
  std::vector<Pattern> patterns;
  patterns.push_back(MakeSingleEdge());
  EXPECT_FALSE(
      RoleSignature(MakeTriangle(false), 7, patterns, SignatureOptions())
          .ok());
}

// ---- Jaccard via census (Section II claim) ----

TEST(JaccardViaCensusTest, MatchesDirectJaccard) {
  // J(u, v) = |N(u) cap N(v)| / |N(u) cup N(v)| computed from single-node
  // censuses over SUBGRAPH-INTERSECTION and SUBGRAPH-UNION at k = 1, after
  // removing u and v themselves from both sets (the classic definition uses
  // open neighborhoods; the census counts closed ones).
  GeneratorOptions gen;
  gen.num_nodes = 60;
  gen.edges_per_node = 3;
  gen.seed = 23;
  Graph g = GeneratePreferentialAttachment(gen);

  Pattern node = MakeSingleNode();
  PairwiseCensusOptions inter;
  inter.k = 1;
  inter.neighborhood = PairNeighborhood::kIntersection;
  auto inter_counts = RunPairwisePtOpt(g, node, inter);
  ASSERT_TRUE(inter_counts.ok());

  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const auto& [key, count] : *inter_counts) {
    pairs.push_back(UnpackPair(key));
    if (pairs.size() >= 60) break;
  }
  PairwiseCensusOptions uni = inter;
  uni.neighborhood = PairNeighborhood::kUnion;
  auto union_counts = RunPairwiseNdBas(g, node, pairs, uni);
  ASSERT_TRUE(union_counts.ok());

  auto jaccard = ComputeJaccardScores(g);
  std::unordered_map<std::uint64_t, double> jaccard_map(jaccard.begin(),
                                                        jaccard.end());

  for (std::size_t i = 0; i < pairs.size(); ++i) {
    auto [u, v] = pairs[i];
    double closed_inter =
        static_cast<double>(inter_counts->at(PackPair(u, v)));
    double closed_union = static_cast<double>((*union_counts)[i]);
    // Open-neighborhood correction: the census counts closed
    // neighborhoods. If u, v are adjacent, each belongs to the other's open
    // neighborhood, so the closed intersection gains {u, v} and the closed
    // union gains nothing; if not adjacent, the intersection is unchanged
    // and the union gains {u, v}.
    bool adjacent = g.HasUndirectedEdge(u, v);
    double open_inter = closed_inter - (adjacent ? 2 : 0);
    double open_union = closed_union - (adjacent ? 0 : 2);
    double expected = 0;
    auto it = jaccard_map.find(PackPair(u, v));
    if (it != jaccard_map.end()) expected = it->second;
    if (open_union > 0) {
      EXPECT_NEAR(open_inter / open_union, expected, 1e-9)
          << "pair (" << u << "," << v << ")";
    }
  }
}

}  // namespace
}  // namespace egocensus
