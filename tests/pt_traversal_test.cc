// Reproduces Figure 2 of the paper: the 6-node example where best-first
// ordering visits each node exactly once while breadth-first causes
// reinsertions, plus unit coverage of the simultaneous expander.

#include <gtest/gtest.h>

#include "census/pt_expander.h"
#include "graph/distance_index.h"
#include "tests/test_util.h"

namespace egocensus::internal {
namespace {

using egocensus::testing::MakeGraph;

// Figure 2(a): pattern match nodes m1, m2, m3 (ids 0, 1, 2) and regular
// nodes n1, n2, n3 (ids 3, 4, 5). Edges reconstructed from the PMD tables
// in Figures 2(b)/(c): m1-m2, m2-m3, m1-n1, m2-n2, m3-n2, n1-n2, n1-n3.
Graph Figure2Graph() {
  return MakeGraph(6, {{0, 1}, {1, 2}, {0, 3}, {1, 4}, {2, 4}, {3, 4}, {3, 5}});
}

TEST(SimultaneousExpanderTest, Figure2FinalDistances) {
  Graph g = Figure2Graph();
  ExpanderOptions opts;
  opts.k = 3;
  opts.best_first = true;
  SimultaneousExpander expander(g, opts);
  // One match with anchors m1, m2, m3; pattern distances 0-1-2 chain.
  std::vector<std::uint32_t> pattern_dist = {0, 1, 2, 1, 0, 1, 2, 1, 0};
  expander.Expand({{0, 1, 2}}, &pattern_dist);

  ASSERT_EQ(expander.cluster_anchors().size(), 3u);
  // Expected exact distances from Figure 2(c): n1 = (1,2,2), n2 = (2,1,1),
  // n3 = (2,3,3).
  auto pmd_of = [&](NodeId n) {
    for (std::size_t slot = 0; slot < expander.NumVisited(); ++slot) {
      if (expander.VisitedNode(slot) == n) {
        return std::vector<int>{expander.Pmd(slot, 0), expander.Pmd(slot, 1),
                                expander.Pmd(slot, 2)};
      }
    }
    return std::vector<int>{};
  };
  EXPECT_EQ(pmd_of(3), (std::vector<int>{1, 2, 2}));
  EXPECT_EQ(pmd_of(4), (std::vector<int>{2, 1, 1}));
  EXPECT_EQ(pmd_of(5), (std::vector<int>{2, 3, 3}));
  EXPECT_EQ(pmd_of(0), (std::vector<int>{0, 1, 2}));
}

TEST(SimultaneousExpanderTest, Figure2BestFirstNoReprocessing) {
  Graph g = Figure2Graph();
  ExpanderOptions opts;
  opts.k = 3;
  opts.best_first = true;
  SimultaneousExpander expander(g, opts);
  std::vector<std::uint32_t> pattern_dist = {0, 1, 2, 1, 0, 1, 2, 1, 0};
  expander.Expand({{0, 1, 2}}, &pattern_dist);
  // Figure 2(c): with best-first order every node is processed exactly
  // once — no reinsertions.
  EXPECT_EQ(expander.stats().reinsertions, 0u);
  EXPECT_EQ(expander.NumVisited(), 6u);
}

TEST(SimultaneousExpanderTest, RandomOrderStillConverges) {
  Graph g = Figure2Graph();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ExpanderOptions opts;
    opts.k = 3;
    opts.best_first = false;
    opts.seed = seed;
    SimultaneousExpander expander(g, opts);
    std::vector<std::uint32_t> pattern_dist = {0, 1, 2, 1, 0, 1, 2, 1, 0};
    expander.Expand({{0, 1, 2}}, &pattern_dist);
    for (std::size_t slot = 0; slot < expander.NumVisited(); ++slot) {
      if (expander.VisitedNode(slot) == 4) {
        EXPECT_EQ(expander.Pmd(slot, 0), 2);
        EXPECT_EQ(expander.Pmd(slot, 1), 1);
        EXPECT_EQ(expander.Pmd(slot, 2), 1);
      }
    }
  }
}

TEST(SimultaneousExpanderTest, DistancesCappedAtKPlusOne) {
  // Long path; k = 1 means nodes further than 1 never show a value > 2.
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  ExpanderOptions opts;
  opts.k = 1;
  SimultaneousExpander expander(g, opts);
  expander.Expand({{0}}, nullptr);
  for (std::size_t slot = 0; slot < expander.NumVisited(); ++slot) {
    EXPECT_LE(expander.Pmd(slot, 0), 2);
  }
  // Far nodes are never even discovered: with k=1 the frontier stops at
  // distance-1 nodes (their neighbors would all be >= k+1 anyway).
  for (std::size_t slot = 0; slot < expander.NumVisited(); ++slot) {
    EXPECT_LE(expander.VisitedNode(slot), 2u);
  }
}

TEST(SimultaneousExpanderTest, CenterSeedingGivesExactCenterDistances) {
  Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  CenterDistanceIndex index = CenterDistanceIndex::Build(g, {5});
  ExpanderOptions opts;
  opts.k = 5;
  opts.centers = &index;
  opts.num_centers = 1;
  SimultaneousExpander expander(g, opts);
  expander.Expand({{0}}, nullptr);
  // The center (node 5) is seeded with its exact distance to the anchor.
  for (std::size_t slot = 0; slot < expander.NumVisited(); ++slot) {
    if (expander.VisitedNode(slot) == 5) {
      EXPECT_EQ(expander.Pmd(slot, 0), 5);
    }
    if (expander.VisitedNode(slot) == 3) {
      EXPECT_EQ(expander.Pmd(slot, 0), 3);
    }
  }
}

TEST(SimultaneousExpanderTest, SharedAnchorAcrossMatches) {
  // Two matches sharing anchor node 1.
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  ExpanderOptions opts;
  opts.k = 2;
  SimultaneousExpander expander(g, opts);
  expander.Expand({{0, 1}, {1, 2}}, nullptr);
  EXPECT_EQ(expander.cluster_anchors().size(), 3u);  // 0, 1, 2 deduplicated
  ASSERT_EQ(expander.match_anchor_indices().size(), 2u);
  EXPECT_EQ(expander.match_anchor_indices()[0].size(), 2u);
}

TEST(SimultaneousExpanderTest, ExactDistancesWithinK) {
  // Property: PMD equals true BFS distance wherever true distance <= k.
  Graph g = MakeGraph(8, {{0, 1},
                          {1, 2},
                          {2, 3},
                          {3, 0},
                          {2, 4},
                          {4, 5},
                          {5, 6},
                          {6, 7}});
  ExpanderOptions opts;
  opts.k = 3;
  SimultaneousExpander expander(g, opts);
  expander.Expand({{0, 4}}, nullptr);
  // True distances from 0: 1:1 2:2 3:1 4:3; from 4: 2:1 5:1 ...
  struct Expected {
    NodeId n;
    int d0, d4;
  };
  for (const auto& e : std::vector<Expected>{{0, 0, 3}, {1, 1, 2}, {2, 2, 1},
                                             {3, 1, 2}, {4, 3, 0}, {5, 4, 1}}) {
    for (std::size_t slot = 0; slot < expander.NumVisited(); ++slot) {
      if (expander.VisitedNode(slot) == e.n) {
        EXPECT_EQ(expander.Pmd(slot, 0), std::min(e.d0, 4)) << "node " << e.n;
        EXPECT_EQ(expander.Pmd(slot, 1), std::min(e.d4, 4)) << "node " << e.n;
      }
    }
  }
}

}  // namespace
}  // namespace egocensus::internal
