// Wire-protocol robustness: frame encode/decode against truncation and
// corruption (pure byte-buffer tests, no sockets), then a live server fed
// deliberately broken streams — truncated frames, oversized length
// prefixes, garbage bytes — and a mid-request disconnect that must cancel
// the running census via its governor (observed through StopReason and the
// server's disconnect_cancels counter, failpoint-synchronized so nothing
// races).

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "exec/failpoints.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"

namespace egocensus::net {
namespace {

Message MakeMessage() {
  Message m;
  m.type = FrameType::kQuery;
  m.headers["graph"] = "g";
  m.headers["deadline_ms"] = "250";
  m.body = "SELECT ID FROM nodes";
  return m;
}

/// Polls `predicate` until true or ~10 s pass.
bool WaitFor(const std::function<bool()>& predicate) {
  for (int i = 0; i < 2000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

TEST(FrameTest, RoundTrip) {
  Message in = MakeMessage();
  in.body = std::string("line1\n\nline2\n\x01\x02\xff", 16);  // binary-safe
  std::vector<std::uint8_t> bytes = EncodeFrame(in);

  Message out;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(TryDecodeFrame(bytes.data(), bytes.size(), &out, &consumed,
                           &error),
            DecodeResult::kFrame)
      << error;
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(out.type, FrameType::kQuery);
  EXPECT_EQ(out.Header("graph", ""), "g");
  EXPECT_EQ(out.HeaderInt("deadline_ms", 0), 250u);
  EXPECT_EQ(out.body, in.body);
}

TEST(FrameTest, EveryTruncationNeedsMore) {
  std::vector<std::uint8_t> bytes = EncodeFrame(MakeMessage());
  for (std::size_t prefix = 0; prefix < bytes.size(); ++prefix) {
    Message out;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(TryDecodeFrame(bytes.data(), prefix, &out, &consumed, &error),
              DecodeResult::kNeedMore)
        << "prefix of " << prefix << " bytes decoded unexpectedly";
  }
}

TEST(FrameTest, BadMagicIsCorrupt) {
  std::vector<std::uint8_t> bytes = EncodeFrame(MakeMessage());
  bytes[0] = 0x00;
  Message out;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(TryDecodeFrame(bytes.data(), bytes.size(), &out, &consumed,
                           &error),
            DecodeResult::kCorrupt);
  EXPECT_FALSE(error.empty());
}

TEST(FrameTest, UnknownTypeIsCorrupt) {
  std::vector<std::uint8_t> bytes = EncodeFrame(MakeMessage());
  bytes[1] = 0x7A;  // not a defined FrameType
  Message out;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(TryDecodeFrame(bytes.data(), bytes.size(), &out, &consumed,
                           &error),
            DecodeResult::kCorrupt);
}

TEST(FrameTest, OversizedLengthIsCorruptBeforeBuffering) {
  // A hostile length prefix must be rejected from the 6-byte header alone —
  // no waiting for (or allocating) 4 GiB of payload.
  std::uint8_t header[kFrameHeaderBytes] = {
      kFrameMagic, 0x01, 0xFF, 0xFF, 0xFF, 0xFF};
  Message out;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(TryDecodeFrame(header, sizeof(header), &out, &consumed, &error),
            DecodeResult::kCorrupt);
  EXPECT_NE(error.find("payload"), std::string::npos) << error;
}

TEST(FrameTest, GarbageBytesAreCorrupt) {
  std::vector<std::uint8_t> garbage(64);
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<std::uint8_t>(0x37 + i * 11);
  }
  Message out;
  std::size_t consumed = 0;
  std::string error;
  EXPECT_EQ(TryDecodeFrame(garbage.data(), garbage.size(), &out, &consumed,
                           &error),
            DecodeResult::kCorrupt);
}

TEST(FrameTest, TwoFramesDecodeSequentially) {
  Message a = MakeMessage();
  Message b = Client::StatusRequest();
  std::vector<std::uint8_t> bytes = EncodeFrame(a);
  std::vector<std::uint8_t> second = EncodeFrame(b);
  bytes.insert(bytes.end(), second.begin(), second.end());

  Message out;
  std::size_t consumed = 0;
  std::string error;
  ASSERT_EQ(TryDecodeFrame(bytes.data(), bytes.size(), &out, &consumed,
                           &error),
            DecodeResult::kFrame);
  EXPECT_EQ(out.type, FrameType::kQuery);
  ASSERT_EQ(TryDecodeFrame(bytes.data() + consumed, bytes.size() - consumed,
                           &out, &consumed, &error),
            DecodeResult::kFrame);
  EXPECT_EQ(out.type, FrameType::kStatus);
}

TEST(FrameTest, MalformedHeaderLineFails) {
  Message out;
  Status status = ParsePayload("no colon here\n\nbody", &out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

TEST(FrameTest, HeaderIntFallsBackOnGarbage) {
  Message m;
  m.headers["deadline_ms"] = "12x4";
  m.headers["threads"] = "";
  EXPECT_EQ(m.HeaderInt("deadline_ms", 7), 7u);
  EXPECT_EQ(m.HeaderInt("threads", 7), 7u);
  EXPECT_EQ(m.HeaderInt("absent", 7), 7u);
}

TEST(EndpointTest, ParseAcceptsAndRejects) {
  auto ok = ParseEndpoint("127.0.0.1:7471");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->host, "127.0.0.1");
  EXPECT_EQ(ok->port, 7471);

  for (const char* bad : {"noport", "host:", "host:notanumber", ":",
                          "host:99999", ""}) {
    auto parsed = ParseEndpoint(bad);
    EXPECT_FALSE(parsed.ok()) << bad;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

// ---------------------------------------------------------------------------
// Live-server robustness.

class ProtocolServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoints::DisarmAll();
    GeneratorOptions gen;
    gen.num_nodes = 3000;
    gen.edges_per_node = 5;
    gen.num_labels = 3;
    gen.seed = 11;
    CensusServer::Options options;
    options.listen.port = 0;  // ephemeral: tests never race on a port
    server_ = std::make_unique<CensusServer>(options);
    ASSERT_TRUE(server_->registry()
                    .Add("g", GeneratePreferentialAttachment(gen))
                    .ok());
    ASSERT_TRUE(server_->Start().ok());
    endpoint_.host = "127.0.0.1";
    endpoint_.port = server_->port();
  }

  void TearDown() override {
    server_->RequestShutdown();
    server_->Wait();
    failpoints::DisarmAll();
  }

  Endpoint endpoint_;
  std::unique_ptr<CensusServer> server_;
};

TEST_F(ProtocolServerTest, TruncatedFrameCountsAsProtocolError) {
  auto socket = Socket::ConnectTcp(endpoint_);
  ASSERT_TRUE(socket.ok());
  // A header promising 100 payload bytes, then only 10, then FIN.
  std::uint8_t header[kFrameHeaderBytes] = {kFrameMagic, 0x01, 100, 0, 0, 0};
  ASSERT_TRUE(socket->SendRaw(header, sizeof(header)).ok());
  std::uint8_t partial[10] = {};
  ASSERT_TRUE(socket->SendRaw(partial, sizeof(partial)).ok());
  socket->ShutdownWrite();
  EXPECT_TRUE(WaitFor(
      [this] { return server_->counters().protocol_errors >= 1; }));
}

TEST_F(ProtocolServerTest, GarbageBytesGetErrorResponse) {
  auto socket = Socket::ConnectTcp(endpoint_);
  ASSERT_TRUE(socket.ok());
  std::vector<std::uint8_t> garbage(32, 0x5A);  // wrong magic
  ASSERT_TRUE(socket->SendRaw(garbage.data(), garbage.size()).ok());
  // Best-effort ERROR frame before the server hangs up.
  auto response = socket->RecvFrame();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->type, FrameType::kError);
  EXPECT_EQ(response->Header("code", ""), "PARSE_ERROR");
  EXPECT_TRUE(WaitFor(
      [this] { return server_->counters().protocol_errors >= 1; }));
}

TEST_F(ProtocolServerTest, OversizedLengthPrefixTearsDownConnection) {
  auto socket = Socket::ConnectTcp(endpoint_);
  ASSERT_TRUE(socket.ok());
  std::uint8_t header[kFrameHeaderBytes] = {
      kFrameMagic, 0x01, 0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_TRUE(socket->SendRaw(header, sizeof(header)).ok());
  auto response = socket->RecvFrame();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->type, FrameType::kError);
  // After the error the server closes; the next read hits EOF.
  auto after = socket->RecvFrame();
  EXPECT_FALSE(after.ok());
  EXPECT_TRUE(WaitFor(
      [this] { return server_->counters().protocol_errors >= 1; }));
}

TEST_F(ProtocolServerTest, ResponseTypedRequestIsRejected) {
  auto socket = Socket::ConnectTcp(endpoint_);
  ASSERT_TRUE(socket.ok());
  Message bogus;
  bogus.type = FrameType::kResult;  // response type from a client
  ASSERT_TRUE(socket->SendFrame(bogus).ok());
  auto response = socket->RecvFrame();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->type, FrameType::kError);
  EXPECT_TRUE(WaitFor(
      [this] { return server_->counters().protocol_errors >= 1; }));
}

TEST_F(ProtocolServerTest, MidRequestDisconnectCancelsCensus) {
  auto client = Client::Connect(endpoint_);
  ASSERT_TRUE(client.ok());
  int fd = client->fd();

  // Deterministic mid-census disconnect: at the 100th governed checkpoint
  // the failpoint handler hangs up the client's socket and then parks the
  // census long enough for the server's disconnect watcher (5 ms poll) to
  // observe the FIN and cancel the governor. The checkpoint right after
  // the handler returns must observe the cancellation.
  failpoints::Arm("exec/checkpoint", 100, [fd] {
    ::shutdown(fd, SHUT_RDWR);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });

  Message request = Client::QueryRequest(
      "g",
      "PATTERN t {?A-?B; ?B-?C; ?C-?A;} "
      "SELECT ID, COUNTP(t, SUBGRAPH(ID, 1)) FROM nodes");
  auto response = client->Call(request);
  // The client hung itself up, so its own read fails; the assertion of
  // interest is server-side.
  (void)response;

  EXPECT_TRUE(WaitFor(
      [this] { return server_->counters().disconnect_cancels >= 1; }));
  EXPECT_TRUE(WaitFor([this] {
    for (const auto& record : server_->RecentRequests()) {
      if (record.type == std::string("QUERY") &&
          record.stop_reason == "cancelled") {
        return true;
      }
    }
    return false;
  }));
}

// ---------------------------------------------------------------------------
// Socket timeouts (client-side robustness against a stalled server).

TEST(SocketTimeoutTest, IoTimeoutTurnsStalledPeerIntoDeadline) {
  // A listener that accepts and then never responds: exactly the hang an
  // I/O timeout exists for.
  Listener listener;
  Endpoint bind;
  bind.host = "127.0.0.1";
  ASSERT_TRUE(listener.Listen(bind).ok());
  Endpoint endpoint;
  endpoint.host = "127.0.0.1";
  endpoint.port = listener.port();

  auto socket = Socket::ConnectTcp(endpoint, /*connect_timeout_ms=*/2000);
  ASSERT_TRUE(socket.ok()) << socket.status().ToString();
  ASSERT_TRUE(socket->SetIoTimeout(150).ok());

  auto accepted = listener.AcceptOnce(2000);
  ASSERT_TRUE(accepted.ok());

  ASSERT_TRUE(socket->SendFrame(MakeMessage()).ok());
  auto started = std::chrono::steady_clock::now();
  auto response = socket->RecvFrame();  // the peer stays silent
  auto waited = std::chrono::steady_clock::now() - started;
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded)
      << response.status().ToString();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(waited)
                .count(),
            5000)
      << "a 150 ms io timeout must not block for seconds";
}

TEST(SocketTimeoutTest, ConnectTimeoutFailsFastWhenAcceptQueueIsFull) {
  // Saturate a backlog-1 listener that never accepts: once the kernel's
  // accept queue fills, further SYNs are dropped and connect() hangs —
  // the blackholed-server case the connect timeout bounds.
  Listener listener;
  Endpoint bind;
  bind.host = "127.0.0.1";
  ASSERT_TRUE(listener.Listen(bind, /*backlog=*/1).ok());
  Endpoint endpoint;
  endpoint.host = "127.0.0.1";
  endpoint.port = listener.port();

  std::vector<Socket> held;
  bool timed_out = false;
  for (int i = 0; i < 64 && !timed_out; ++i) {
    auto socket = Socket::ConnectTcp(endpoint, /*connect_timeout_ms=*/250);
    if (socket.ok()) {
      held.push_back(std::move(*socket));
      continue;
    }
    EXPECT_EQ(socket.status().code(), StatusCode::kDeadlineExceeded)
        << socket.status().ToString();
    timed_out = true;
  }
  EXPECT_TRUE(timed_out)
      << "64 connects against a backlog-1 listener that never accepts "
         "should saturate the accept queue and hit the connect timeout";
}

// ---------------------------------------------------------------------------
// AcceptOnce must tell a signal (EINTR) apart from a poll timeout: with an
// infinite timeout a kNotFound "timeout" cannot happen, and callers use the
// distinction to re-check stop flags.

namespace {
void IgnoreSignal(int) {}
}  // namespace

TEST(ListenerTest, AcceptInterruptedBySignalIsNotATimeout) {
  Listener listener;
  Endpoint bind;
  bind.host = "127.0.0.1";
  ASSERT_TRUE(listener.Listen(bind).ok());

  // sigaction without SA_RESTART: poll() returns EINTR (on Linux poll is
  // never auto-restarted, but be explicit for portability).
  struct sigaction action {};
  action.sa_handler = IgnoreSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  struct sigaction previous {};
  ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);

  pthread_t accept_thread = pthread_self();
  std::thread interrupter([accept_thread] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    pthread_kill(accept_thread, SIGUSR1);
  });
  auto accepted = listener.AcceptOnce(/*timeout_ms=*/10000);
  interrupter.join();
  ASSERT_EQ(sigaction(SIGUSR1, &previous, nullptr), 0);

  ASSERT_FALSE(accepted.ok());
  EXPECT_EQ(accepted.status().code(), StatusCode::kInterrupted)
      << accepted.status().ToString();
  EXPECT_NE(accepted.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace egocensus::net
