// Index-consistency property test: after update batches are applied to a
// DynamicGraph, a ProfileIndex / CenterDistanceIndex rebuilt from the
// materialized overlay must agree entry-for-entry with indexes built on an
// equivalent static graph constructed from scratch — i.e. compaction and
// materialization lose nothing the index layer depends on.

#include <gtest/gtest.h>

#include <vector>

#include "dynamic/dynamic_graph.h"
#include "graph/distance_index.h"
#include "graph/generators.h"
#include "graph/profile_index.h"
#include "util/rng.h"

namespace egocensus {
namespace {

/// Builds the equivalent static graph from scratch (fresh CSR, not via
/// Materialize) so the comparison crosses two independent construction
/// paths.
Graph RebuildFromScratch(const DynamicGraph& dg) {
  Graph g(dg.directed());
  for (NodeId n = 0; n < dg.NumNodes(); ++n) g.AddNode(dg.label(n));
  for (NodeId n = 0; n < dg.NumNodes(); ++n) {
    for (NodeId x : dg.OutNeighbors(n)) {
      if (!dg.directed() && x < n) continue;
      g.AddEdge(n, x);
    }
  }
  CheckOk(g.Finalize(), "test fixture setup");
  return g;
}

void ApplyRandomUpdates(DynamicGraph* dg, Rng* rng, int count) {
  for (int i = 0; i < count; ++i) {
    NodeId u = static_cast<NodeId>(rng->NextBounded(dg->NumNodes()));
    NodeId v = static_cast<NodeId>(rng->NextBounded(dg->NumNodes()));
    if (u == v || dg->NodeRemoved(u) || dg->NodeRemoved(v)) continue;
    if (rng->NextDouble() < 0.55) {
      ASSERT_TRUE(dg->AddEdge(u, v).ok());
    } else {
      ASSERT_TRUE(dg->RemoveEdge(u, v).ok());
    }
  }
}

void ExpectIndexesAgree(const DynamicGraph& dg) {
  Graph materialized = dg.Materialize();
  Graph scratch = RebuildFromScratch(dg);
  ASSERT_EQ(materialized.NumNodes(), scratch.NumNodes());
  ASSERT_EQ(materialized.NumEdges(), scratch.NumEdges());

  ProfileIndex profiles_a = ProfileIndex::Build(materialized);
  ProfileIndex profiles_b = ProfileIndex::Build(scratch);
  ASSERT_EQ(profiles_a.num_labels(), profiles_b.num_labels());
  for (NodeId n = 0; n < materialized.NumNodes(); ++n) {
    for (Label l = 0; l < profiles_a.num_labels(); ++l) {
      ASSERT_EQ(profiles_a.Count(n, l), profiles_b.Count(n, l))
          << "profile mismatch at node " << n << " label " << l;
    }
  }

  std::vector<NodeId> centers_a = PickHighestDegreeCenters(materialized, 8);
  std::vector<NodeId> centers_b = PickHighestDegreeCenters(scratch, 8);
  ASSERT_EQ(centers_a, centers_b);
  CenterDistanceIndex index_a =
      CenterDistanceIndex::Build(materialized, centers_a);
  CenterDistanceIndex index_b = CenterDistanceIndex::Build(scratch, centers_b);
  ASSERT_EQ(index_a.NumCenters(), index_b.NumCenters());
  for (NodeId n = 0; n < materialized.NumNodes(); ++n) {
    for (std::size_t c = 0; c < index_a.NumCenters(); ++c) {
      ASSERT_EQ(index_a.Distance(c, n), index_b.Distance(c, n))
          << "distance mismatch at node " << n << " center " << c;
    }
  }
}

TEST(IndexInvalidationTest, UndirectedUpdateBatches) {
  GeneratorOptions opts;
  opts.num_nodes = 80;
  opts.edges_per_node = 4;
  opts.num_labels = 4;
  opts.seed = 51;
  DynamicGraph dg(GeneratePreferentialAttachment(opts));
  Rng rng(52);
  for (int batch = 0; batch < 5; ++batch) {
    ApplyRandomUpdates(&dg, &rng, 30);
    ExpectIndexesAgree(dg);
  }
}

TEST(IndexInvalidationTest, DirectedUpdateBatchesWithNodeOps) {
  DynamicGraph dg(GenerateErdosRenyi(60, 240, 3, 53, /*directed=*/true));
  Rng rng(54);
  for (int batch = 0; batch < 4; ++batch) {
    ApplyRandomUpdates(&dg, &rng, 25);
    ASSERT_TRUE(dg.AddNode(static_cast<Label>(batch % 3)).ok());
    NodeId victim = static_cast<NodeId>(rng.NextBounded(dg.NumNodes()));
    if (!dg.NodeRemoved(victim)) {
      ASSERT_TRUE(dg.RemoveNode(victim).ok());
    }
    ExpectIndexesAgree(dg);
  }
}

TEST(IndexInvalidationTest, AgreementSurvivesCompaction) {
  GeneratorOptions opts;
  opts.num_nodes = 60;
  opts.edges_per_node = 3;
  opts.num_labels = 2;
  opts.seed = 55;
  DynamicGraph dg(GeneratePreferentialAttachment(opts));
  Rng rng(56);
  ApplyRandomUpdates(&dg, &rng, 60);
  dg.Compact();
  EXPECT_EQ(dg.DeltaSize(), 0u);
  ApplyRandomUpdates(&dg, &rng, 20);
  ExpectIndexesAgree(dg);
}

}  // namespace
}  // namespace egocensus
