#include <gtest/gtest.h>

#include "graph/bfs.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "tests/test_util.h"

namespace egocensus {
namespace {

using testing::MakeGraph;

// Path 0-1-2-3-4 with a chord 0-2.
Graph PathWithChord() {
  return MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}});
}

TEST(BfsTest, DistancesOnPath) {
  Graph g = PathWithChord();
  BfsWorkspace bfs;
  bfs.Run(g, 0, 10);
  EXPECT_EQ(bfs.DistanceTo(0), 0u);
  EXPECT_EQ(bfs.DistanceTo(1), 1u);
  EXPECT_EQ(bfs.DistanceTo(2), 1u);  // via chord
  EXPECT_EQ(bfs.DistanceTo(3), 2u);
  EXPECT_EQ(bfs.DistanceTo(4), 3u);
}

TEST(BfsTest, DepthBound) {
  Graph g = PathWithChord();
  BfsWorkspace bfs;
  const auto& visited = bfs.Run(g, 4, 1);
  EXPECT_EQ(visited.size(), 2u);  // {4, 3}
  EXPECT_TRUE(bfs.Reached(3));
  EXPECT_FALSE(bfs.Reached(2));
}

TEST(BfsTest, DepthZeroIsJustSource) {
  Graph g = PathWithChord();
  BfsWorkspace bfs;
  EXPECT_EQ(bfs.Run(g, 2, 0).size(), 1u);
  EXPECT_EQ(bfs.DistanceTo(2), 0u);
  EXPECT_FALSE(bfs.Reached(1));
}

TEST(BfsTest, WorkspaceResetBetweenRuns) {
  Graph g = PathWithChord();
  BfsWorkspace bfs;
  bfs.Run(g, 0, 10);
  bfs.Run(g, 4, 1);
  EXPECT_FALSE(bfs.Reached(0));  // stale distances must be cleared
  EXPECT_TRUE(bfs.Reached(3));
}

TEST(BfsTest, VisitOrderNondecreasingDistance) {
  GeneratorOptions opts;
  opts.num_nodes = 200;
  opts.seed = 5;
  Graph g = GeneratePreferentialAttachment(opts);
  BfsWorkspace bfs;
  const auto& visited = bfs.Run(g, 0, 3);
  for (std::size_t i = 1; i < visited.size(); ++i) {
    EXPECT_LE(bfs.DistanceTo(visited[i - 1]), bfs.DistanceTo(visited[i]));
  }
}

TEST(BfsTest, DisconnectedComponentUnreached) {
  Graph g = MakeGraph(4, {{0, 1}, {2, 3}});
  BfsWorkspace bfs;
  bfs.Run(g, 0, 10);
  EXPECT_TRUE(bfs.Reached(1));
  EXPECT_FALSE(bfs.Reached(2));
  EXPECT_EQ(bfs.DistanceTo(3), BfsWorkspace::kUnreached);
}

TEST(FullBfsTest, MatchesBoundedBfs) {
  GeneratorOptions opts;
  opts.num_nodes = 300;
  opts.seed = 6;
  Graph g = GeneratePreferentialAttachment(opts);
  std::vector<std::uint16_t> dist;
  FullBfsDistances(g, 7, &dist, 0xFFFF);
  BfsWorkspace bfs;
  bfs.Run(g, 7, 1000);
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (bfs.Reached(n)) {
      EXPECT_EQ(dist[n], bfs.DistanceTo(n));
    } else {
      EXPECT_EQ(dist[n], 0xFFFF);
    }
  }
}

TEST(SubgraphTest, KHopInduced) {
  Graph g = PathWithChord();
  SubgraphExtractor extractor(g);
  EgoSubgraph sub = extractor.ExtractKHop(0, 1);
  // N_1(0) = {0, 1, 2}; induced edges: 0-1, 1-2, 0-2.
  EXPECT_EQ(sub.graph.NumNodes(), 3u);
  EXPECT_EQ(sub.graph.NumEdges(), 3u);
  EXPECT_EQ(sub.to_global.size(), 3u);
}

TEST(SubgraphTest, LabelsCopied) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}}, {5, 6, 7});
  SubgraphExtractor extractor(g);
  EgoSubgraph sub = extractor.ExtractKHop(1, 1);
  ASSERT_EQ(sub.graph.NumNodes(), 3u);
  for (NodeId local = 0; local < 3; ++local) {
    EXPECT_EQ(sub.graph.label(local), g.label(sub.to_global[local]));
  }
}

TEST(SubgraphTest, AttributesCopiedWhenRequested) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  g.node_attributes().Set(1, "W", std::int64_t{9});
  SubgraphExtractor extractor(g);
  EgoSubgraph with = extractor.ExtractKHop(0, 1, /*copy_attributes=*/true);
  bool found = false;
  for (NodeId local = 0; local < with.graph.NumNodes(); ++local) {
    if (with.to_global[local] == 1) {
      found = with.graph.GetNodeAttribute(local, "W").has_value();
    }
  }
  EXPECT_TRUE(found);
  EgoSubgraph without = extractor.ExtractKHop(0, 1, /*copy_attributes=*/false);
  for (NodeId local = 0; local < without.graph.NumNodes(); ++local) {
    EXPECT_FALSE(without.graph.GetNodeAttribute(local, "W").has_value());
  }
}

TEST(SubgraphTest, DirectedEdgesKeptOriented) {
  Graph g = MakeGraph(3, {{0, 1}, {2, 1}}, {}, /*directed=*/true);
  SubgraphExtractor extractor(g);
  EgoSubgraph sub = extractor.ExtractKHop(1, 1);
  EXPECT_EQ(sub.graph.NumNodes(), 3u);
  EXPECT_EQ(sub.graph.NumEdges(), 2u);
  // Find local ids.
  NodeId l0 = kInvalidNode, l1 = kInvalidNode, l2 = kInvalidNode;
  for (NodeId l = 0; l < 3; ++l) {
    if (sub.to_global[l] == 0) l0 = l;
    if (sub.to_global[l] == 1) l1 = l;
    if (sub.to_global[l] == 2) l2 = l;
  }
  EXPECT_TRUE(sub.graph.HasEdge(l0, l1));
  EXPECT_FALSE(sub.graph.HasEdge(l1, l0));
  EXPECT_TRUE(sub.graph.HasEdge(l2, l1));
}

TEST(SubgraphTest, IntersectionAndUnion) {
  // Path 0-1-2-3-4.
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  SubgraphExtractor extractor(g);
  EgoSubgraph inter = extractor.ExtractIntersection(0, 2, 1);
  // N_1(0) = {0,1,2}... actually {0,1}; N_1(2) = {1,2,3}; intersection {1}.
  EXPECT_EQ(inter.graph.NumNodes(), 1u);
  EXPECT_EQ(inter.to_global[0], 1u);

  EgoSubgraph uni = extractor.ExtractUnion(0, 2, 1);
  EXPECT_EQ(uni.graph.NumNodes(), 4u);  // {0,1} U {1,2,3}
  EXPECT_EQ(uni.graph.NumEdges(), 3u);  // 0-1, 1-2, 2-3
}

TEST(SubgraphTest, EdgeAttributesCopied) {
  Graph g;
  g.AddNodes(3);
  EdgeId e = g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.edge_attributes().Set(e, "SIGN", std::int64_t{-1});
  CheckOk(g.Finalize(), "test fixture setup");
  SubgraphExtractor extractor(g);
  EgoSubgraph sub = extractor.ExtractKHop(0, 1);
  ASSERT_EQ(sub.graph.NumEdges(), 1u);
  auto sign = sub.graph.edge_attributes().Get(0, "SIGN");
  ASSERT_TRUE(sign.has_value());
  EXPECT_EQ(std::get<std::int64_t>(*sign), -1);
}

TEST(SubgraphTest, RepeatedExtractionIsConsistent) {
  GeneratorOptions opts;
  opts.num_nodes = 100;
  opts.seed = 8;
  Graph g = GeneratePreferentialAttachment(opts);
  SubgraphExtractor extractor(g);
  EgoSubgraph first = extractor.ExtractKHop(5, 2);
  for (int i = 0; i < 3; ++i) extractor.ExtractKHop(i, 1);
  EgoSubgraph again = extractor.ExtractKHop(5, 2);
  EXPECT_EQ(first.graph.NumNodes(), again.graph.NumNodes());
  EXPECT_EQ(first.graph.NumEdges(), again.graph.NumEdges());
}

}  // namespace
}  // namespace egocensus
