#ifndef EGOCENSUS_TESTS_TEST_UTIL_H_
#define EGOCENSUS_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "match/match_set.h"
#include "pattern/pattern.h"

namespace egocensus::testing {

/// Builds a small undirected graph from an edge list. Labels optional.
inline Graph MakeGraph(std::uint32_t num_nodes,
                       const std::vector<std::pair<NodeId, NodeId>>& edges,
                       const std::vector<Label>& labels = {},
                       bool directed = false) {
  Graph g(directed);
  g.AddNodes(num_nodes);
  for (std::uint32_t i = 0; i < labels.size(); ++i) CheckOk(g.SetLabel(i, labels[i]), "test fixture setup");
  for (const auto& [u, v] : edges) g.AddEdge(u, v);
  CheckOk(g.Finalize(), "test fixture setup");
  return g;
}

/// Counts pattern *embeddings* (injective assignments satisfying all
/// structural edges, labels, negated edges and predicates) by brute force.
/// Matchers count matches (= embeddings / |Aut(P)|), so tests verify
///   matcher.size() * pattern.NumAutomorphisms() == CountEmbeddings(...).
inline std::uint64_t CountEmbeddings(const Graph& g, const Pattern& p) {
  const int arity = p.NumNodes();
  std::vector<NodeId> assignment(arity, kInvalidNode);
  std::vector<char> used(g.NumNodes(), 0);
  std::uint64_t count = 0;

  auto edge_ok = [&](const PatternEdge& e) {
    NodeId a = assignment[e.src];
    NodeId b = assignment[e.dst];
    bool present = e.directed && g.directed() ? g.HasEdge(a, b)
                                              : g.HasUndirectedEdge(a, b);
    return e.negated ? !present : present;
  };

  auto recurse = [&](auto&& self, int i) -> void {
    if (i == arity) {
      for (const auto& e : p.NegativeEdges()) {
        if (!edge_ok(e)) return;
      }
      for (const auto& pred : p.Predicates()) {
        if (!EvaluatePredicate(g, pred, assignment)) return;
      }
      ++count;
      return;
    }
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      if (used[n]) continue;
      auto label = p.LabelConstraint(i);
      if (label.has_value() && g.label(n) != *label) continue;
      assignment[i] = n;
      bool ok = true;
      for (const auto& e : p.PositiveEdges()) {
        if (e.src <= i && e.dst <= i && (e.src == i || e.dst == i)) {
          if (!edge_ok(e)) {
            ok = false;
            break;
          }
        }
      }
      if (ok) {
        used[n] = 1;
        self(self, i + 1);
        used[n] = 0;
      }
      assignment[i] = kInvalidNode;
    }
  };
  recurse(recurse, 0);
  return count;
}

}  // namespace egocensus::testing

#endif  // EGOCENSUS_TESTS_TEST_UTIL_H_
