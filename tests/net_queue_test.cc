// FairRequestQueue unit tests: grant/overflow/eviction outcomes, DRR
// fairness order, the legacy reject-on-full mode, drain semantics, and the
// enqueue = dequeue + evict conservation law via the net/queue failpoints.
// Waiters are real threads (Acquire blocks its caller), synchronized
// through the queue's own observable state — no sleeps as synchronization.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "exec/failpoints.h"
#include "net/queue.h"
#include "util/timer.h"

namespace egocensus::net {
namespace {

bool WaitFor(const std::function<bool()>& predicate) {
  for (int i = 0; i < 2000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

QueueOptions FastOptions(std::uint32_t slots, std::size_t depth) {
  QueueOptions options;
  options.slots = slots;
  options.max_depth = depth;
  options.poll_ms = 1;  // fast eviction checks keep the tests snappy
  return options;
}

TEST(FairRequestQueueTest, GrantsImmediatelyWhenSlotsFree) {
  FairRequestQueue queue(FastOptions(2, 8));
  std::uint64_t wait_us = 1;
  EXPECT_EQ(queue.Acquire("a", 10, 0, -1, &wait_us), AdmitOutcome::kGranted);
  EXPECT_EQ(queue.active(), 1u);
  EXPECT_EQ(queue.depth(), 0u);
  queue.Release();
  EXPECT_TRUE(queue.Idle());
  auto stats = queue.TenantStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].tenant, "a");
  EXPECT_EQ(stats[0].granted, 1u);
}

TEST(FairRequestQueueTest, OverflowBeyondDepthBound) {
  FairRequestQueue queue(FastOptions(1, 1));
  std::uint64_t wait_us = 0;
  ASSERT_EQ(queue.Acquire("a", 1, 0, -1, &wait_us), AdmitOutcome::kGranted);

  std::thread waiter([&queue] {
    std::uint64_t w = 0;
    EXPECT_EQ(queue.Acquire("a", 1, 0, -1, &w), AdmitOutcome::kGranted);
    queue.Release();
  });
  ASSERT_TRUE(WaitFor([&queue] { return queue.depth() == 1; }));

  // Depth bound hit: immediate overflow, no blocking.
  EXPECT_EQ(queue.Acquire("a", 1, 0, -1, &wait_us), AdmitOutcome::kOverflow);
  queue.Release();
  waiter.join();
  EXPECT_TRUE(queue.Idle());
  auto stats = queue.TenantStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].busy_overflow, 1u);
  EXPECT_EQ(stats[0].granted, 2u);
}

TEST(FairRequestQueueTest, OverflowBeyondByteBound) {
  QueueOptions options = FastOptions(1, 8);
  options.max_bytes = 100;
  FairRequestQueue queue(options);
  std::uint64_t wait_us = 0;
  ASSERT_EQ(queue.Acquire("a", 10, 0, -1, &wait_us), AdmitOutcome::kGranted);

  std::thread waiter([&queue] {
    std::uint64_t w = 0;
    EXPECT_EQ(queue.Acquire("a", 90, 0, -1, &w), AdmitOutcome::kGranted);
    queue.Release();
  });
  ASSERT_TRUE(WaitFor([&queue] { return queue.queued_bytes() == 90; }));

  // 90 queued + 20 would breach max_bytes = 100.
  EXPECT_EQ(queue.Acquire("a", 20, 0, -1, &wait_us), AdmitOutcome::kOverflow);
  queue.Release();
  waiter.join();
  EXPECT_TRUE(queue.Idle());
  EXPECT_EQ(queue.queued_bytes(), 0u);
}

TEST(FairRequestQueueTest, RejectOnFullCompatWhenDepthZero) {
  // queue_depth = 0 restores the legacy behavior: no waiting at all.
  FairRequestQueue queue(FastOptions(1, 0));
  std::uint64_t wait_us = 0;
  ASSERT_EQ(queue.Acquire("a", 1, 0, -1, &wait_us), AdmitOutcome::kGranted);
  EXPECT_EQ(queue.Acquire("a", 1, 0, -1, &wait_us), AdmitOutcome::kOverflow);
  queue.Release();
  EXPECT_TRUE(queue.Idle());
}

TEST(FairRequestQueueTest, DeadOnArrivalDeadlineNeverQueues) {
  FairRequestQueue queue(FastOptions(1, 8));
  std::uint64_t wait_us = 0;
  ASSERT_EQ(queue.Acquire("a", 1, 0, -1, &wait_us), AdmitOutcome::kGranted);
  // A deadline already in the past: evicted before ever waiting, even
  // though the queue has room.
  EXPECT_EQ(queue.Acquire("a", 1, Timer::NowMicros() - 1, -1, &wait_us),
            AdmitOutcome::kDeadlineExpired);
  queue.Release();
  auto stats = queue.TenantStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].evicted_deadline, 1u);
}

TEST(FairRequestQueueTest, DeadlineExpiryEvictsWhileQueued) {
  FairRequestQueue queue(FastOptions(1, 8));
  std::uint64_t wait_us = 0;
  ASSERT_EQ(queue.Acquire("a", 1, 0, -1, &wait_us), AdmitOutcome::kGranted);

  // 50 ms deadline, but the slot is held much longer: the waiter must be
  // evicted from inside the queue, not wait for a grant that comes too
  // late.
  std::atomic<AdmitOutcome> outcome{AdmitOutcome::kGranted};
  std::thread waiter([&queue, &outcome] {
    std::uint64_t w = 0;
    outcome.store(
        queue.Acquire("a", 1, Timer::NowMicros() + 50'000, -1, &w));
  });
  waiter.join();
  EXPECT_EQ(outcome.load(), AdmitOutcome::kDeadlineExpired);
  EXPECT_EQ(queue.depth(), 0u);
  queue.Release();
  EXPECT_TRUE(queue.Idle());
}

TEST(FairRequestQueueTest, ClientDisconnectEvictsWhileQueued) {
  FairRequestQueue queue(FastOptions(1, 8));
  std::uint64_t wait_us = 0;
  ASSERT_EQ(queue.Acquire("a", 1, 0, -1, &wait_us), AdmitOutcome::kGranted);

  int pair[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  std::atomic<AdmitOutcome> outcome{AdmitOutcome::kGranted};
  std::thread waiter([&queue, &outcome, &pair] {
    std::uint64_t w = 0;
    outcome.store(queue.Acquire("a", 1, 0, pair[0], &w));
  });
  ASSERT_TRUE(WaitFor([&queue] { return queue.depth() == 1; }));

  ::close(pair[1]);  // the client hangs up while its request is queued
  waiter.join();
  EXPECT_EQ(outcome.load(), AdmitOutcome::kDisconnected);
  ::close(pair[0]);
  queue.Release();
  EXPECT_TRUE(queue.Idle());
  auto stats = queue.TenantStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].evicted_disconnect, 1u);
}

TEST(FairRequestQueueTest, DrrInterleavesTenantsInsteadOfFifo) {
  // One slot, tenant A floods 6 requests, then tenant B adds 2. Plain
  // FIFO would serve B last; DRR must alternate A and B while both are
  // backlogged, so B's grants land early.
  FairRequestQueue queue(FastOptions(1, 16));
  std::uint64_t wait_us = 0;
  ASSERT_EQ(queue.Acquire("hold", 1, 0, -1, &wait_us),
            AdmitOutcome::kGranted);

  std::mutex order_mu;
  std::vector<std::string> order;
  std::vector<std::thread> waiters;
  auto spawn = [&](const std::string& tenant) {
    waiters.emplace_back([&, tenant] {
      std::uint64_t w = 0;
      ASSERT_EQ(queue.Acquire(tenant, 1, 0, -1, &w), AdmitOutcome::kGranted);
      {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(tenant);
      }
      queue.Release();
    });
    // Serialize enqueue order so the FIFO-vs-DRR distinction is
    // deterministic: all A's queued before any B.
    std::size_t want = waiters.size();
    ASSERT_TRUE(WaitFor([&queue, want] { return queue.depth() == want; }));
  };
  for (int i = 0; i < 6; ++i) spawn("a");
  spawn("b");
  spawn("b");

  queue.Release();  // open the floodgates
  for (auto& waiter : waiters) waiter.join();

  ASSERT_EQ(order.size(), 8u);
  // Both B requests must complete within the first four grants (strict
  // alternation would put them 2nd and 4th; allow scheduling slack but
  // reject anything FIFO-like, where they would be 7th and 8th).
  int b_in_first_four = 0;
  for (int i = 0; i < 4; ++i) {
    if (order[static_cast<std::size_t>(i)] == "b") ++b_in_first_four;
  }
  EXPECT_EQ(b_in_first_four, 2)
      << "DRR should alternate backlogged tenants; got order: " <<
      [&order] {
        std::string joined;
        for (const auto& tenant : order) joined += tenant + " ";
        return joined;
      }();
  EXPECT_TRUE(queue.Idle());
}

TEST(FairRequestQueueTest, DrainRejectsNewAndFlushesQueued) {
  FairRequestQueue queue(FastOptions(1, 8));
  std::uint64_t wait_us = 0;
  ASSERT_EQ(queue.Acquire("a", 1, 0, -1, &wait_us), AdmitOutcome::kGranted);

  std::atomic<AdmitOutcome> queued_outcome{AdmitOutcome::kGranted};
  std::thread waiter([&queue, &queued_outcome] {
    std::uint64_t w = 0;
    queued_outcome.store(queue.Acquire("a", 1, 0, -1, &w));
  });
  ASSERT_TRUE(WaitFor([&queue] { return queue.depth() == 1; }));

  queue.BeginDrain();
  EXPECT_TRUE(queue.draining());
  // New arrivals bounce immediately...
  EXPECT_EQ(queue.Acquire("a", 1, 0, -1, &wait_us), AdmitOutcome::kDraining);
  // ...and the flush evicts the queued waiter with the same outcome.
  EXPECT_EQ(queue.FlushForDrain(), 1u);
  waiter.join();
  EXPECT_EQ(queued_outcome.load(), AdmitOutcome::kDraining);
  queue.Release();
  EXPECT_TRUE(queue.Idle());
}

TEST(FairRequestQueueTest, FailpointsObeyConservationLaw) {
  if (!failpoints::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  failpoints::DisarmAll();
  failpoints::Arm("net/queue/enqueue", 0, nullptr);  // observe-only
  failpoints::Arm("net/queue/dequeue", 0, nullptr);
  failpoints::Arm("net/queue/evict", 0, nullptr);

  FairRequestQueue queue(FastOptions(2, 2));
  std::uint64_t wait_us = 0;
  // Two grants, one queued-then-granted, one overflow, one DOA deadline.
  ASSERT_EQ(queue.Acquire("a", 1, 0, -1, &wait_us), AdmitOutcome::kGranted);
  ASSERT_EQ(queue.Acquire("b", 1, 0, -1, &wait_us), AdmitOutcome::kGranted);
  std::thread waiter([&queue] {
    std::uint64_t w = 0;
    EXPECT_EQ(queue.Acquire("a", 1, 0, -1, &w), AdmitOutcome::kGranted);
    queue.Release();
  });
  ASSERT_TRUE(WaitFor([&queue] { return queue.depth() == 1; }));
  EXPECT_EQ(queue.Acquire("c", 1, Timer::NowMicros() - 1, -1, &wait_us),
            AdmitOutcome::kDeadlineExpired);
  std::thread overflow1([&queue] {
    std::uint64_t w = 0;
    EXPECT_EQ(queue.Acquire("b", 1, 0, -1, &w), AdmitOutcome::kGranted);
    queue.Release();
  });
  ASSERT_TRUE(WaitFor([&queue] { return queue.depth() == 2; }));
  EXPECT_EQ(queue.Acquire("c", 1, 0, -1, &wait_us), AdmitOutcome::kOverflow);

  queue.Release();
  queue.Release();
  waiter.join();
  overflow1.join();
  ASSERT_TRUE(WaitFor([&queue] { return queue.Idle(); }));

  // Conservation: every Acquire ended exactly one way.
  std::uint64_t enqueued = failpoints::Hits("net/queue/enqueue");
  std::uint64_t dequeued = failpoints::Hits("net/queue/dequeue");
  std::uint64_t evicted = failpoints::Hits("net/queue/evict");
  EXPECT_EQ(enqueued, 6u);
  EXPECT_EQ(dequeued, 4u);
  EXPECT_EQ(evicted, 2u);
  EXPECT_EQ(enqueued, dequeued + evicted);
  EXPECT_EQ(queue.peak_active(), 2u);
  failpoints::DisarmAll();
}

}  // namespace
}  // namespace egocensus::net
