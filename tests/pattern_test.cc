#include "pattern/pattern.h"

#include <gtest/gtest.h>

#include <set>

#include "pattern/catalog.h"

namespace egocensus {
namespace {

TEST(PatternTest, NodesDeduplicatedByName) {
  Pattern p;
  int a1 = p.AddNode("A");
  int a2 = p.AddNode("A");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(p.NumNodes(), 1);
  EXPECT_EQ(p.FindNode("A"), a1);
  EXPECT_EQ(p.FindNode("B"), -1);
}

TEST(PatternTest, EmptyPatternRejected) {
  Pattern p;
  EXPECT_FALSE(p.Prepare().ok());
}

TEST(PatternTest, DisconnectedPatternRejected) {
  Pattern p;
  p.AddEdge("A", "B", false);
  p.AddEdge("C", "D", false);
  EXPECT_FALSE(p.Prepare().ok());
}

TEST(PatternTest, NegativeEdgeOnlyIsDisconnected) {
  Pattern p;
  p.AddEdge("A", "B", false, /*negated=*/true);
  EXPECT_FALSE(p.Prepare().ok());
}

TEST(PatternTest, SingleNodeIsValid) {
  Pattern p;
  p.AddNode("A");
  EXPECT_TRUE(p.Prepare().ok());
  EXPECT_EQ(p.PivotRadius(), 0u);
  EXPECT_EQ(p.SearchOrder().size(), 1u);
}

TEST(PatternTest, DistancesOnPath) {
  Pattern p;
  p.AddEdge("A", "B", false);
  p.AddEdge("B", "C", false);
  p.AddEdge("C", "D", false);
  ASSERT_TRUE(p.Prepare().ok());
  int a = p.FindNode("A"), b = p.FindNode("B"), d = p.FindNode("D");
  EXPECT_EQ(p.Distance(a, d), 3u);
  EXPECT_EQ(p.Distance(a, b), 1u);
  EXPECT_EQ(p.Distance(a, a), 0u);
  EXPECT_EQ(p.Eccentricity(a), 3u);
  EXPECT_EQ(p.Eccentricity(b), 2u);
  // Pivot = a middle node, radius 2.
  EXPECT_EQ(p.PivotRadius(), 2u);
  int pivot = p.Pivot();
  EXPECT_TRUE(pivot == b || pivot == p.FindNode("C"));
}

TEST(PatternTest, SearchOrderPrefixesConnected) {
  Pattern p;
  p.AddEdge("A", "B", false);
  p.AddEdge("B", "C", false);
  p.AddEdge("C", "D", false);
  p.AddEdge("D", "A", false);
  ASSERT_TRUE(p.Prepare().ok());
  const auto& order = p.SearchOrder();
  ASSERT_EQ(order.size(), 4u);
  std::set<int> prefix = {order[0]};
  for (std::size_t i = 1; i < order.size(); ++i) {
    bool connected = false;
    for (const auto& adj : p.Neighbors(order[i])) {
      if (prefix.count(adj.node) != 0) connected = true;
    }
    EXPECT_TRUE(connected) << "prefix " << i << " disconnected";
    prefix.insert(order[i]);
  }
}

TEST(PatternTest, TriangleAutomorphisms) {
  Pattern p = MakeTriangle(/*labeled=*/false);
  EXPECT_EQ(p.NumAutomorphisms(), 6u);
  // Symmetry breaking for S3 needs exactly |orbit1|-1 + |orbit2|-1 = 2+1.
  EXPECT_EQ(p.SymmetryConditions().size(), 3u);
}

TEST(PatternTest, LabeledTriangleAsymmetric) {
  Pattern p = MakeTriangle(/*labeled=*/true);
  EXPECT_EQ(p.NumAutomorphisms(), 1u);
  EXPECT_TRUE(p.SymmetryConditions().empty());
}

TEST(PatternTest, EdgeAutomorphisms) {
  Pattern p = MakeSingleEdge();
  EXPECT_EQ(p.NumAutomorphisms(), 2u);
  EXPECT_EQ(p.SymmetryConditions().size(), 1u);
}

TEST(PatternTest, SquareAutomorphisms) {
  Pattern p = MakeSquare(/*labeled=*/false);
  EXPECT_EQ(p.NumAutomorphisms(), 8u);  // dihedral group of the 4-cycle
}

TEST(PatternTest, Clique4Automorphisms) {
  Pattern p = MakeClique4(/*labeled=*/false);
  EXPECT_EQ(p.NumAutomorphisms(), 24u);
}

TEST(PatternTest, DirectedEdgeBreaksSymmetry) {
  Pattern p;
  p.AddEdge("A", "B", /*directed=*/true);
  ASSERT_TRUE(p.Prepare().ok());
  EXPECT_EQ(p.NumAutomorphisms(), 1u);
}

TEST(PatternTest, DirectedCycleHasRotations) {
  Pattern p;
  p.AddEdge("A", "B", true);
  p.AddEdge("B", "C", true);
  p.AddEdge("C", "A", true);
  ASSERT_TRUE(p.Prepare().ok());
  EXPECT_EQ(p.NumAutomorphisms(), 3u);  // rotations only, no reflections
}

TEST(PatternTest, PredicatePreservingAutomorphisms) {
  // Symmetric equality predicate keeps the swap automorphism.
  Pattern p;
  p.AddEdge("A", "B", false);
  PatternPredicate pred;
  pred.lhs = NodeAttrRef{p.FindNode("A"), "W"};
  pred.op = PredicateOp::kEq;
  pred.rhs = NodeAttrRef{p.FindNode("B"), "W"};
  p.AddPredicate(pred);
  ASSERT_TRUE(p.Prepare().ok());
  EXPECT_EQ(p.NumAutomorphisms(), 2u);
}

TEST(PatternTest, AsymmetricPredicateBreaksSymmetry) {
  Pattern p;
  p.AddEdge("A", "B", false);
  PatternPredicate pred;
  pred.lhs = NodeAttrRef{p.FindNode("A"), "W"};
  pred.op = PredicateOp::kLt;
  pred.rhs = NodeAttrRef{p.FindNode("B"), "W"};
  p.AddPredicate(pred);
  ASSERT_TRUE(p.Prepare().ok());
  EXPECT_EQ(p.NumAutomorphisms(), 1u);
}

TEST(PatternTest, SubpatternConstrainsAutomorphisms) {
  // Unlabeled triangle with subpattern {B}: automorphisms must fix B.
  Pattern p;
  p.AddEdge("A", "B", false);
  p.AddEdge("B", "C", false);
  p.AddEdge("C", "A", false);
  ASSERT_TRUE(p.AddSubpattern("mid", {"B"}).ok());
  ASSERT_TRUE(p.Prepare().ok());
  EXPECT_EQ(p.NumAutomorphisms(), 2u);  // only A <-> C swap remains
}

TEST(PatternTest, SubpatternValidation) {
  Pattern p;
  p.AddEdge("A", "B", false);
  EXPECT_FALSE(p.AddSubpattern("s", {"Z"}).ok());
  EXPECT_FALSE(p.AddSubpattern("s", {}).ok());
  ASSERT_TRUE(p.AddSubpattern("s", {"B", "B"}).ok());  // deduplicated
  EXPECT_EQ(p.FindSubpattern("s")->size(), 1u);
  EXPECT_EQ(p.FindSubpattern("missing"), nullptr);
}

TEST(PatternTest, CoordinatorTriadShape) {
  Pattern p = MakeCoordinatorTriad();
  EXPECT_EQ(p.NumNodes(), 3);
  EXPECT_EQ(p.PositiveEdges().size(), 2u);
  EXPECT_EQ(p.NegativeEdges().size(), 1u);
  EXPECT_EQ(p.Predicates().size(), 2u);
  ASSERT_NE(p.FindSubpattern("coordinator"), nullptr);
  EXPECT_EQ(p.NumAutomorphisms(), 1u);
}

TEST(PatternTest, HasGeneralPredicates) {
  Pattern label_only = MakeCoordinatorTriad();
  EXPECT_FALSE(label_only.HasGeneralPredicates());  // LABEL refs only
  Pattern p;
  p.AddEdge("A", "B", false);
  PatternPredicate pred;
  pred.lhs = NodeAttrRef{p.FindNode("A"), "AGE"};
  pred.op = PredicateOp::kGt;
  pred.rhs = AttributeValue(std::int64_t{10});
  p.AddPredicate(pred);
  ASSERT_TRUE(p.Prepare().ok());
  EXPECT_TRUE(p.HasGeneralPredicates());
}

TEST(PatternTest, TooLargePatternRejected) {
  Pattern p;
  for (int i = 0; i + 1 < 11; ++i) {
    p.AddEdge("N" + std::to_string(i), "N" + std::to_string(i + 1), false);
  }
  EXPECT_FALSE(p.Prepare().ok());
}

TEST(PatternTest, MixedEdgeAdjacencyFlags) {
  Pattern p;
  p.AddEdge("A", "B", /*directed=*/true);
  p.AddEdge("B", "A", /*directed=*/true);
  ASSERT_TRUE(p.Prepare().ok());
  const auto& adj = p.Neighbors(p.FindNode("A"));
  ASSERT_EQ(adj.size(), 1u);
  EXPECT_TRUE(adj[0].via_out);
  EXPECT_TRUE(adj[0].via_in);
}

TEST(CatalogTest, PathPattern) {
  Pattern p = MakePath(5, /*labeled=*/false);
  EXPECT_EQ(p.NumNodes(), 5);
  EXPECT_EQ(p.NumAutomorphisms(), 2u);
  EXPECT_EQ(p.PivotRadius(), 2u);
}

}  // namespace
}  // namespace egocensus
