// Determinism of the parallel census engines: for every algorithm and for
// every thread count, per-node counts and total match counts must be
// bit-identical to the single-threaded run. Exercises plain, negated-edge
// and subpattern (COUNTSP) censuses on seeded preferential-attachment,
// DBLP-like and random directed graphs. Also unit-tests the thread pool
// itself. The whole binary doubles as the ThreadSanitizer workload in CI.

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "apps/dblp_gen.h"
#include "census/census.h"
#include "graph/generators.h"
#include "pattern/catalog.h"
#include "pattern/pattern_parser.h"
#include "util/rng.h"

namespace egocensus {
namespace {

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.NumWorkers(), 4u);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(0, touched.size(), /*grain=*/7,
                   [&](std::size_t begin, std::size_t end, unsigned) {
                     for (std::size_t i = begin; i < end; ++i) {
                       touched[i].fetch_add(1, std::memory_order_relaxed);
                     }
                   });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossJobsAndOddShapes) {
  ThreadPool pool(3);
  for (std::size_t count : {0ul, 1ul, 2ul, 17ul, 256ul}) {
    std::vector<int> out(count, 0);
    pool.ParallelFor(5, 5 + count, /*grain=*/4,
                     [&](std::size_t begin, std::size_t end, unsigned) {
                       for (std::size_t i = begin; i < end; ++i) {
                         out[i - 5] = static_cast<int>(i);
                       }
                     });
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i + 5));
    }
  }
}

TEST(ThreadPoolTest, ResolveNumThreads) {
  EXPECT_GE(ThreadPool::ResolveNumThreads(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveNumThreads(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveNumThreads(6), 6u);
}

constexpr CensusAlgorithm kAllAlgorithms[] = {
    CensusAlgorithm::kNdBas, CensusAlgorithm::kNdPvot,
    CensusAlgorithm::kNdDiff, CensusAlgorithm::kPtBas,
    CensusAlgorithm::kPtOpt, CensusAlgorithm::kPtRnd};

/// Runs the census with 1, 2 and 8 threads for every algorithm and expects
/// counts and num_matches to be identical across thread counts.
void ExpectDeterministic(const Graph& graph, const Pattern& pattern,
                         std::span<const NodeId> focal, CensusOptions opts) {
  for (auto algorithm : kAllAlgorithms) {
    opts.algorithm = algorithm;
    opts.num_threads = 1;
    auto serial = RunCensus(graph, pattern, focal, opts);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    EXPECT_EQ(serial->stats.threads_used, 1u);
    for (std::uint32_t threads : {2u, 8u}) {
      opts.num_threads = threads;
      auto parallel = RunCensus(graph, pattern, focal, opts);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_EQ(parallel->counts, serial->counts)
          << CensusAlgorithmName(algorithm) << " diverged at " << threads
          << " threads";
      EXPECT_EQ(parallel->stats.num_matches, serial->stats.num_matches)
          << CensusAlgorithmName(algorithm);
      EXPECT_EQ(parallel->stats.threads_used, threads);
    }
  }
}

TEST(ParallelCensusTest, LabeledTriangleOnPaGraph) {
  GeneratorOptions gen;
  gen.num_nodes = 600;
  gen.edges_per_node = 4;
  gen.num_labels = 4;
  gen.seed = 31;
  Graph graph = GeneratePreferentialAttachment(gen);
  CensusOptions opts;
  opts.k = 2;
  ExpectDeterministic(graph, MakeTriangle(true), AllNodes(graph), opts);
}

TEST(ParallelCensusTest, FocalSubsetOnPaGraph) {
  GeneratorOptions gen;
  gen.num_nodes = 500;
  gen.edges_per_node = 5;
  gen.seed = 32;
  Graph graph = GeneratePreferentialAttachment(gen);
  // Every third node only: exercises non-contiguous focal shards.
  std::vector<NodeId> focal;
  for (NodeId n = 0; n < graph.NumNodes(); n += 3) focal.push_back(n);
  CensusOptions opts;
  opts.k = 1;
  ExpectDeterministic(graph, MakeTriangle(false), focal, opts);
}

TEST(ParallelCensusTest, NegatedEdgePatternOnPaGraph) {
  // Small graph: the open wedge is non-selective (matches grow ~ sum of
  // degree^2), and the quadratic baselines must run too.
  GeneratorOptions gen;
  gen.num_nodes = 120;
  gen.edges_per_node = 3;
  gen.seed = 33;
  Graph graph = GeneratePreferentialAttachment(gen);
  auto open_wedge = ParsePattern("PATTERN w {?A-?B; ?B-?C; ?A!-?C;}");
  ASSERT_TRUE(open_wedge.ok());
  CensusOptions opts;
  opts.k = 1;
  ExpectDeterministic(graph, *open_wedge, AllNodes(graph), opts);
}

TEST(ParallelCensusTest, UnlabeledTriangleOnDblpGraph) {
  DblpOptions dblp;
  dblp.num_authors = 500;
  dblp.num_communities = 12;
  dblp.num_years = 4;
  dblp.train_years = 3;
  dblp.papers_per_year = 80;
  dblp.seed = 2001;
  DblpData data = GenerateDblp(dblp);
  CensusOptions opts;
  opts.k = 2;
  ExpectDeterministic(data.train, MakeTriangle(false), AllNodes(data.train),
                      opts);
}

TEST(ParallelCensusTest, SubpatternCoordinatorOnRandomDigraph) {
  // COUNTSP census: the focal node must match the "coordinator" subpattern
  // node, which pins anchors to the subpattern and exercises the
  // containment-check paths of every engine.
  Graph graph(true);
  const NodeId n = 300;
  graph.AddNodes(n);
  Rng rng(17);
  for (NodeId u = 0; u < n; ++u) CheckOk(graph.SetLabel(u, 1), "test fixture setup");
  for (std::uint32_t e = 0; e < 4 * n; ++e) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u != v) graph.AddEdge(u, v);
  }
  CheckOk(graph.Finalize(), "test fixture setup");
  CensusOptions opts;
  opts.k = 1;
  opts.subpattern = "coordinator";
  ExpectDeterministic(graph, MakeCoordinatorTriad(), AllNodes(graph), opts);
}

TEST(ParallelCensusTest, HardwareThreadCountRuns) {
  GeneratorOptions gen;
  gen.num_nodes = 200;
  gen.edges_per_node = 3;
  gen.seed = 34;
  Graph graph = GeneratePreferentialAttachment(gen);
  CensusOptions opts;
  opts.k = 1;
  opts.algorithm = CensusAlgorithm::kNdPvot;
  opts.num_threads = 0;  // hardware concurrency
  auto result = RunCensus(graph, MakeTriangle(false), AllNodes(graph), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.threads_used, ThreadPool::ResolveNumThreads(0));
  std::uint64_t total =
      std::accumulate(result->counts.begin(), result->counts.end(),
                      std::uint64_t{0});
  EXPECT_GT(total, 0u);
}

}  // namespace
}  // namespace egocensus
