#include "graph/graph.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace egocensus {
namespace {

using testing::MakeGraph;

TEST(GraphTest, EmptyGraph) {
  Graph g;
  CheckOk(g.Finalize(), "test fixture setup");
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.NumLabels(), 1u);
}

TEST(GraphTest, UndirectedBasics) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumEdges(), 4u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));  // undirected symmetry
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.Degree(0), 2u);
  auto nbrs = g.Neighbors(1);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 0u);  // sorted
  EXPECT_EQ(nbrs[1], 2u);
}

TEST(GraphTest, DirectedAdjacency) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}}, {}, /*directed=*/true);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasUndirectedEdge(1, 0));
  EXPECT_EQ(g.OutNeighbors(1).size(), 1u);
  EXPECT_EQ(g.InNeighbors(1).size(), 1u);
  EXPECT_EQ(g.Neighbors(1).size(), 2u);  // combined view
  EXPECT_EQ(g.Degree(1), 2u);
}

TEST(GraphTest, DirectedCombinedViewDeduplicates) {
  // Both directions present: combined view must list the neighbor once.
  Graph g = MakeGraph(2, {{0, 1}, {1, 0}}, {}, /*directed=*/true);
  EXPECT_EQ(g.Neighbors(0).size(), 1u);
  EXPECT_EQ(g.OutNeighbors(0).size(), 1u);
  EXPECT_EQ(g.InNeighbors(0).size(), 1u);
}

TEST(GraphTest, SelfLoopRejected) {
  Graph g;
  g.AddNodes(2);
  EXPECT_EQ(g.AddEdge(0, 0), kInvalidEdge);
  EXPECT_EQ(g.AddEdge(0, 5), kInvalidEdge);
  EXPECT_NE(g.AddEdge(0, 1), kInvalidEdge);
  CheckOk(g.Finalize(), "test fixture setup");
  EXPECT_EQ(g.NumEdges(), 1u);
}

TEST(GraphTest, EdgeEndpointsPreserved) {
  Graph g = MakeGraph(3, {{2, 0}, {1, 2}});
  auto [u, v] = g.EdgeEndpoints(0);
  EXPECT_EQ(u, 2u);
  EXPECT_EQ(v, 0u);
}

TEST(GraphTest, FindEdgeReturnsId) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  auto e = g.FindEdge(1, 2);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, 1u);
  EXPECT_FALSE(g.FindEdge(0, 2).has_value());
  // Undirected: reverse direction resolves too.
  EXPECT_TRUE(g.FindEdge(2, 1).has_value());
}

TEST(GraphTest, LabelsAndNumLabels) {
  Graph g = MakeGraph(3, {{0, 1}}, {0, 2, 1});
  EXPECT_EQ(g.label(1), 2u);
  EXPECT_EQ(g.NumLabels(), 3u);
}

TEST(GraphTest, LabelAttributeFastPath) {
  Graph g = MakeGraph(2, {{0, 1}}, {3, 1});
  auto v = g.GetNodeAttribute(0, "label");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(std::get<std::int64_t>(*v), 3);
  auto id = g.GetNodeAttribute(1, "ID");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(std::get<std::int64_t>(*id), 1);
}

TEST(GraphTest, DynamicNodeAttributes) {
  Graph g = MakeGraph(2, {{0, 1}});
  g.node_attributes().Set(0, "age", std::int64_t{30});
  g.node_attributes().Set(1, "name", std::string("bob"));
  auto age = g.GetNodeAttribute(0, "AGE");  // case-insensitive
  ASSERT_TRUE(age.has_value());
  EXPECT_EQ(std::get<std::int64_t>(*age), 30);
  EXPECT_FALSE(g.GetNodeAttribute(1, "AGE").has_value());
  auto name = g.GetNodeAttribute(1, "NAME");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(std::get<std::string>(*name), "bob");
}

TEST(GraphTest, EdgeAttributes) {
  Graph g;
  g.AddNodes(3);
  EdgeId e0 = g.AddEdge(0, 1);
  EdgeId e1 = g.AddEdge(1, 2);
  g.edge_attributes().Set(e0, "sign", std::int64_t{1});
  g.edge_attributes().Set(e1, "sign", std::int64_t{-1});
  CheckOk(g.Finalize(), "test fixture setup");
  auto found = g.FindEdge(1, 2);
  ASSERT_TRUE(found.has_value());
  auto sign = g.edge_attributes().Get(*found, "SIGN");
  ASSERT_TRUE(sign.has_value());
  EXPECT_EQ(std::get<std::int64_t>(*sign), -1);
}

TEST(GraphTest, OutEdgeIdsParallelToNeighbors) {
  Graph g = MakeGraph(4, {{0, 3}, {0, 1}, {0, 2}});
  auto nbrs = g.OutNeighbors(0);
  auto eids = g.OutEdgeIds(0);
  ASSERT_EQ(nbrs.size(), eids.size());
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    auto [u, v] = g.EdgeEndpoints(eids[i]);
    EXPECT_TRUE((u == 0 && v == nbrs[i]) || (v == 0 && u == nbrs[i]));
  }
}

TEST(GraphTest, CopyIsIndependent) {
  Graph g = MakeGraph(3, {{0, 1}});
  Graph copy = g;
  EXPECT_EQ(copy.NumEdges(), 1u);
  EXPECT_TRUE(copy.HasEdge(0, 1));
}

TEST(GraphTest, DoubleFinalizeIsStatusError) {
  Graph g;
  g.AddNodes(2);
  EXPECT_TRUE(g.Finalize().ok());
  Status again = g.Finalize();
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, MutationAfterFinalizeIsGuarded) {
  Graph g;
  g.AddNodes(3);
  g.AddEdge(0, 1);
  ASSERT_TRUE(g.Finalize().ok());

  // Build-phase mutations after finalize fail without corrupting state.
  EXPECT_EQ(g.AddNode(1), kInvalidNode);
  EXPECT_EQ(g.AddNodes(4), kInvalidNode);
  EXPECT_EQ(g.AddEdge(1, 2), kInvalidEdge);
  Status set = g.SetLabel(0, 2);
  EXPECT_FALSE(set.ok());
  EXPECT_EQ(set.code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.label(0), 0u);
}

TEST(GraphTest, SetLabelOutOfRangeIsStatusError) {
  Graph g;
  g.AddNodes(2);
  Status set = g.SetLabel(5, 1);
  EXPECT_FALSE(set.ok());
  EXPECT_EQ(set.code(), StatusCode::kOutOfRange);
}

TEST(AttributeValueTest, NumericCoercion) {
  EXPECT_TRUE(AttributeValuesEqual(AttributeValue(std::int64_t{3}),
                                   AttributeValue(3.0)));
  EXPECT_FALSE(AttributeValuesEqual(AttributeValue(std::int64_t{3}),
                                    AttributeValue(3.5)));
  EXPECT_TRUE(AttributeValuesEqual(AttributeValue(std::string("a")),
                                   AttributeValue(std::string("a"))));
  EXPECT_FALSE(AttributeValuesEqual(AttributeValue(std::string("3")),
                                    AttributeValue(std::int64_t{3})));
}

TEST(AttributeValueTest, Compare) {
  auto cmp = CompareAttributeValues(AttributeValue(std::int64_t{2}),
                                    AttributeValue(5.0));
  ASSERT_TRUE(cmp.has_value());
  EXPECT_LT(*cmp, 0);
  auto strcmp_result = CompareAttributeValues(AttributeValue(std::string("b")),
                                              AttributeValue(std::string("a")));
  ASSERT_TRUE(strcmp_result.has_value());
  EXPECT_GT(*strcmp_result, 0);
  EXPECT_FALSE(CompareAttributeValues(AttributeValue(std::string("a")),
                                      AttributeValue(1.0))
                   .has_value());
}

TEST(AttributeTableTest, CopyFrom) {
  AttributeTable src, dst;
  src.Set(5, "X", std::int64_t{7});
  src.Set(5, "Y", std::string("s"));
  src.Set(6, "X", std::int64_t{8});
  dst.CopyFrom(src, 5, 0);
  EXPECT_EQ(std::get<std::int64_t>(*dst.Get(0, "X")), 7);
  EXPECT_EQ(std::get<std::string>(*dst.Get(0, "Y")), "s");
  EXPECT_FALSE(dst.Get(1, "X").has_value());
}

TEST(AttributeTableTest, AttributeNames) {
  AttributeTable t;
  t.Set(0, "alpha", std::int64_t{1});
  t.Set(1, "Beta", 2.0);
  auto names = t.AttributeNames();
  EXPECT_EQ(names.size(), 2u);
  EXPECT_TRUE(t.Has(0, "ALPHA"));
  EXPECT_TRUE(t.Has(1, "beta"));
}

}  // namespace
}  // namespace egocensus
