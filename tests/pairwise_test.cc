#include "census/pairwise.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "pattern/catalog.h"
#include "pattern/pattern_parser.h"
#include "tests/test_util.h"

namespace egocensus {
namespace {

using testing::MakeGraph;

TEST(PackPairTest, CanonicalOrder) {
  EXPECT_EQ(PackPair(3, 7), PackPair(7, 3));
  auto [a, b] = UnpackPair(PackPair(7, 3));
  EXPECT_EQ(a, 3u);
  EXPECT_EQ(b, 7u);
}

TEST(PairwiseTest, IntersectionOnPath) {
  // Path 0-1-2; single node pattern, k=1: the intersection of N_1(0) and
  // N_1(2) is {1} -> count 1 for the pair (0,2).
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  Pattern node = MakeSingleNode();
  PairwiseCensusOptions opts;
  opts.k = 1;
  opts.neighborhood = PairNeighborhood::kIntersection;
  auto counts = RunPairwisePtOpt(g, node, opts);
  ASSERT_TRUE(counts.ok());
  auto it = counts->find(PackPair(0, 2));
  ASSERT_NE(it, counts->end());
  EXPECT_EQ(it->second, 1u);
  // Pair (0,1): intersection {0,1} -> 2 common nodes.
  EXPECT_EQ(counts->at(PackPair(0, 1)), 2u);
}

TEST(PairwiseTest, PtOptEqualsPtBas) {
  GeneratorOptions gopts;
  gopts.num_nodes = 60;
  gopts.edges_per_node = 2;
  gopts.seed = 41;
  Graph g = GeneratePreferentialAttachment(gopts);
  for (auto neighborhood :
       {PairNeighborhood::kIntersection, PairNeighborhood::kUnion}) {
    for (std::uint32_t k : {1u, 2u}) {
      Pattern edge = MakeSingleEdge();
      PairwiseCensusOptions opts;
      opts.k = k;
      opts.neighborhood = neighborhood;
      auto opt = RunPairwisePtOpt(g, edge, opts);
      auto bas = RunPairwisePtBas(g, edge, opts);
      ASSERT_TRUE(opt.ok());
      ASSERT_TRUE(bas.ok());
      EXPECT_EQ(*opt, *bas) << "k=" << k;
    }
  }
}

TEST(PairwiseTest, NdBasAgreesOnIntersection) {
  GeneratorOptions gopts;
  gopts.num_nodes = 50;
  gopts.edges_per_node = 2;
  gopts.seed = 43;
  Graph g = GeneratePreferentialAttachment(gopts);
  Pattern tri = MakeTriangle(false);
  PairwiseCensusOptions opts;
  opts.k = 1;
  opts.neighborhood = PairNeighborhood::kIntersection;
  auto pt = RunPairwisePtOpt(g, tri, opts);
  ASSERT_TRUE(pt.ok());

  // Validate every nonzero pair, plus some zero pairs.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const auto& [key, count] : *pt) pairs.push_back(UnpackPair(key));
  pairs.emplace_back(0, 1);
  pairs.emplace_back(10, 20);
  auto nd = RunPairwiseNdBas(g, tri, pairs, opts);
  ASSERT_TRUE(nd.ok());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    std::uint64_t key = PackPair(pairs[i].first, pairs[i].second);
    auto it = pt->find(key);
    std::uint64_t pt_count = it == pt->end() ? 0 : it->second;
    EXPECT_EQ((*nd)[i], pt_count)
        << "pair (" << pairs[i].first << "," << pairs[i].second << ")";
  }
}

TEST(PairwiseTest, NdPvotAgreesWithNdBas) {
  GeneratorOptions gopts;
  gopts.num_nodes = 60;
  gopts.edges_per_node = 2;
  gopts.seed = 47;
  Graph g = GeneratePreferentialAttachment(gopts);
  Pattern edge = MakeSingleEdge();
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId a = 0; a < 20; ++a) {
    pairs.emplace_back(a, (a + 7) % g.NumNodes());
  }
  for (auto neighborhood :
       {PairNeighborhood::kIntersection, PairNeighborhood::kUnion}) {
    for (std::uint32_t k : {1u, 2u}) {
      PairwiseCensusOptions opts;
      opts.k = k;
      opts.neighborhood = neighborhood;
      auto bas = RunPairwiseNdBas(g, edge, pairs, opts);
      auto pvot = RunPairwiseNdPvot(g, edge, pairs, opts);
      ASSERT_TRUE(bas.ok());
      ASSERT_TRUE(pvot.ok());
      EXPECT_EQ(*bas, *pvot) << "k=" << k;
    }
  }
}

TEST(PairwiseTest, UnionCountsAtLeastIntersection) {
  GeneratorOptions gopts;
  gopts.num_nodes = 40;
  gopts.edges_per_node = 2;
  gopts.seed = 51;
  Graph g = GeneratePreferentialAttachment(gopts);
  Pattern edge = MakeSingleEdge();
  PairwiseCensusOptions inter_opts;
  inter_opts.k = 1;
  inter_opts.neighborhood = PairNeighborhood::kIntersection;
  PairwiseCensusOptions union_opts = inter_opts;
  union_opts.neighborhood = PairNeighborhood::kUnion;
  auto inter = RunPairwisePtOpt(g, edge, inter_opts);
  auto uni = RunPairwisePtOpt(g, edge, union_opts);
  ASSERT_TRUE(inter.ok());
  ASSERT_TRUE(uni.ok());
  for (const auto& [key, count] : *inter) {
    auto it = uni->find(key);
    ASSERT_NE(it, uni->end());
    EXPECT_GE(it->second, count);
  }
}

TEST(PairwiseTest, UnionSemanticsAgainstBruteForce) {
  // ND-BAS union counts (subgraph materialization) against hand check on a
  // small graph: path 0-1-2-3; edge pattern with k=1 and pair (0, 3):
  // union node set {0,1} U {2,3} = all four nodes, and the union
  // neighborhood is the *induced* subgraph on that set (the semantics the
  // pattern-driven algorithm implements), so all three path edges count.
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  Pattern edge = MakeSingleEdge();
  std::vector<std::pair<NodeId, NodeId>> pairs = {{0, 3}, {0, 2}};
  PairwiseCensusOptions opts;
  opts.k = 1;
  opts.neighborhood = PairNeighborhood::kUnion;
  auto counts = RunPairwiseNdBas(g, edge, pairs, opts);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)[0], 3u);
  // Pair (0,2): N_1(0)={0,1}, N_1(2)={1,2,3}; union {0,1,2,3}: 3 edges.
  EXPECT_EQ((*counts)[1], 3u);
}

TEST(PairwiseTest, SubpatternPairwise) {
  // Wedge with mid subpattern: a pair's intersection neighborhood contains
  // the wedge's center.
  auto wedge =
      ParsePattern("PATTERN wedge {?A-?B; ?B-?C; SUBPATTERN mid {?B;}}");
  ASSERT_TRUE(wedge.ok());
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {1, 3}});  // star centered at 1
  PairwiseCensusOptions opts;
  opts.k = 1;
  opts.subpattern = "mid";
  opts.neighborhood = PairNeighborhood::kIntersection;
  auto pt = RunPairwisePtOpt(g, *wedge, opts);
  ASSERT_TRUE(pt.ok());
  // Wedges centered at 1: pairs {0,2},{0,3},{2,3} -> 3 wedges. Node 1 is in
  // N_1 of every node, so every pair of {0,1,2,3} has count 3.
  EXPECT_EQ(pt->at(PackPair(0, 2)), 3u);
  EXPECT_EQ(pt->at(PackPair(2, 3)), 3u);
  EXPECT_EQ(pt->at(PackPair(0, 1)), 3u);

  std::vector<std::pair<NodeId, NodeId>> pairs = {{0, 2}, {2, 3}};
  auto nd = RunPairwiseNdBas(g, *wedge, pairs, opts);
  ASSERT_TRUE(nd.ok());
  EXPECT_EQ((*nd)[0], 3u);
  EXPECT_EQ((*nd)[1], 3u);
}

TEST(PairwiseTest, EmptyGraphNoPairs) {
  Graph g = MakeGraph(3, {});
  Pattern edge = MakeSingleEdge();
  PairwiseCensusOptions opts;
  auto counts = RunPairwisePtOpt(g, edge, opts);
  ASSERT_TRUE(counts.ok());
  EXPECT_TRUE(counts->empty());
}

TEST(PairwiseTest, BestFirstAndRandomAgree) {
  GeneratorOptions gopts;
  gopts.num_nodes = 50;
  gopts.seed = 53;
  Graph g = GeneratePreferentialAttachment(gopts);
  Pattern tri = MakeTriangle(false);
  PairwiseCensusOptions best;
  best.k = 2;
  PairwiseCensusOptions random = best;
  random.best_first = false;
  auto a = RunPairwisePtOpt(g, tri, best);
  auto b = RunPairwisePtOpt(g, tri, random);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace egocensus
