#include "lang/engine.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "pattern/catalog.h"
#include "tests/test_util.h"

namespace egocensus {
namespace {

using testing::MakeGraph;

std::int64_t IntAt(const ResultTable& t, std::size_t row, std::size_t col) {
  return std::get<std::int64_t>(t.At(row, col));
}

// Finds the row whose first column equals `id` and returns column `col`.
std::int64_t CountFor(const ResultTable& t, std::int64_t id,
                      std::size_t col = 1) {
  for (std::size_t r = 0; r < t.NumRows(); ++r) {
    if (IntAt(t, r, 0) == id) return IntAt(t, r, col);
  }
  ADD_FAILURE() << "row for id " << id << " not found";
  return -1;
}

TEST(EngineTest, SquareCensusEndToEnd) {
  // Two squares sharing edge 2-3: {0,1,2,3}... build a 6-cycle plus chord
  // making exactly one 4-cycle: nodes 0-1-2-3 square, tail 4.
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {3, 4}});
  QueryEngine engine(g);
  auto result = engine.Execute(
      "PATTERN square { ?A-?B; ?B-?C; ?C-?D; ?D-?A; }\n"
      "SELECT ID, COUNTP(square, SUBGRAPH(ID, 2)) FROM nodes");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 5u);
  EXPECT_EQ(CountFor(*result, 0), 1);
  EXPECT_EQ(CountFor(*result, 3), 1);
  // Node 4 reaches {3, 0, 2} within 2 hops but node 1 is 3 hops away.
  EXPECT_EQ(CountFor(*result, 4), 0);
}

TEST(EngineTest, RegisteredPatternUsableByName) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  QueryEngine engine(g);
  engine.RegisterPattern(MakeTriangle(false));
  auto result = engine.Execute(
      "SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) FROM nodes");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(CountFor(*result, 0), 1);
  EXPECT_EQ(CountFor(*result, 3), 0);
}

TEST(EngineTest, InlinePatternShadowsRegistered) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  QueryEngine engine(g);
  engine.RegisterPattern(MakeTriangle(false));  // named clq3-unlb
  // Inline pattern with the same name but different shape (single edge).
  auto result = engine.Execute(
      "PATTERN clq3-unlb {?A-?B;}\n"
      "SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) FROM nodes");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(CountFor(*result, 1), 2);  // edges, not triangles
}

TEST(EngineTest, WhereFiltersFocalNodes) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}}, {0, 1, 0, 1});
  QueryEngine engine(g);
  auto result = engine.Execute(
      "PATTERN e {?A-?B;}\n"
      "SELECT ID, COUNTP(e, SUBGRAPH(ID, 1)) FROM nodes WHERE LABEL = 1");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->NumRows(), 2u);  // nodes 1 and 3 only
  EXPECT_EQ(IntAt(*result, 0, 0), 1);
  EXPECT_EQ(IntAt(*result, 1, 0), 3);
}

TEST(EngineTest, WhereRndIsDeterministicPerSeed) {
  GeneratorOptions opts;
  opts.num_nodes = 200;
  opts.seed = 61;
  Graph g = GeneratePreferentialAttachment(opts);
  QueryEngine engine(g);
  QueryEngine::Options options;
  options.rnd_seed = 5;
  auto a = engine.Execute("SELECT ID FROM nodes WHERE RND() < 0.3", options);
  auto b = engine.Execute("SELECT ID FROM nodes WHERE RND() < 0.3", options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->NumRows(), b->NumRows());
  EXPECT_GT(a->NumRows(), 30u);
  EXPECT_LT(a->NumRows(), 90u);
}

TEST(EngineTest, CoordinatorTriadQueryEndToEnd) {
  Graph g(true);
  g.AddNodes(4);
  for (NodeId n = 0; n < 4; ++n) CheckOk(g.SetLabel(n, 2), "test fixture setup");
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  CheckOk(g.Finalize(), "test fixture setup");
  QueryEngine engine(g);
  auto result = engine.Execute(
      "PATTERN triad {\n"
      "  ?A->?B; ?B->?C; ?A!->?C;\n"
      "  [?A.LABEL=?B.LABEL]; [?B.LABEL=?C.LABEL];\n"
      "  SUBPATTERN coordinator {?B;}\n"
      "}\n"
      "SELECT ID, COUNTSP(coordinator, triad, SUBGRAPH(ID, 0)) FROM nodes");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(CountFor(*result, 1), 2);  // 0->1->2 and 0->1->3
  EXPECT_EQ(CountFor(*result, 0), 0);
}

TEST(EngineTest, PairwiseIntersectionQuery) {
  // Path 0-1-2.
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  QueryEngine engine(g);
  auto result = engine.Execute(
      "PATTERN single_node {?A;}\n"
      "SELECT n1.ID, n2.ID,\n"
      "  COUNTP(single_node, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1))\n"
      "FROM nodes AS n1, nodes AS n2 WHERE n1.ID > n2.ID");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Pairs with nonzero intersection counts and n1 > n2:
  // (1,0) -> |{0,1}| = 2; (2,0) -> |{1}| = 1; (2,1) -> |{1,2}| = 2.
  ASSERT_EQ(result->NumRows(), 3u);
  std::int64_t total = 0;
  for (std::size_t r = 0; r < result->NumRows(); ++r) {
    EXPECT_GT(IntAt(*result, r, 0), IntAt(*result, r, 1));  // WHERE holds
    total += IntAt(*result, r, 2);
  }
  EXPECT_EQ(total, 5);
}

TEST(EngineTest, EngineAgreesWithDirectCensus) {
  GeneratorOptions opts;
  opts.num_nodes = 100;
  opts.num_labels = 4;
  opts.seed = 63;
  Graph g = GeneratePreferentialAttachment(opts);
  QueryEngine engine(g);
  engine.RegisterPattern(MakeTriangle(true));
  auto result = engine.Execute(
      "SELECT ID, COUNTP(clq3, SUBGRAPH(ID, 2)) FROM nodes");
  ASSERT_TRUE(result.ok());

  CensusOptions census;
  census.k = 2;
  census.algorithm = CensusAlgorithm::kNdBas;
  Pattern tri = MakeTriangle(true);
  auto focal = AllNodes(g);
  auto direct = RunCensus(g, tri, focal, census);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(result->NumRows(), g.NumNodes());
  for (std::size_t r = 0; r < result->NumRows(); ++r) {
    NodeId n = static_cast<NodeId>(IntAt(*result, r, 0));
    EXPECT_EQ(static_cast<std::uint64_t>(IntAt(*result, r, 1)),
              direct->counts[n]);
  }
}

TEST(EngineTest, ForcedAlgorithmRespected) {
  GeneratorOptions opts;
  opts.num_nodes = 80;
  opts.seed = 65;
  Graph g = GeneratePreferentialAttachment(opts);
  QueryEngine engine(g);
  engine.RegisterPattern(MakeSingleEdge());
  QueryEngine::Options options;
  options.auto_algorithm = false;
  options.census.algorithm = CensusAlgorithm::kPtBas;
  auto forced = engine.Execute(
      "SELECT ID, COUNTP(single_edge, SUBGRAPH(ID, 1)) FROM nodes", options);
  ASSERT_TRUE(forced.ok());
  auto auto_result = engine.Execute(
      "SELECT ID, COUNTP(single_edge, SUBGRAPH(ID, 1)) FROM nodes");
  ASSERT_TRUE(auto_result.ok());
  for (std::size_t r = 0; r < forced->NumRows(); ++r) {
    EXPECT_EQ(IntAt(*forced, r, 1), IntAt(*auto_result, r, 1));
  }
}

TEST(EngineTest, LastStatsPopulated) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  QueryEngine engine(g);
  engine.RegisterPattern(MakeTriangle(false));
  // num_matches is a matcher stat; route to the generic engine to see it.
  QueryEngine::Options options;
  options.census.fast_path = FastPathMode::kOff;
  auto result = engine.Execute(
      "SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) FROM nodes", options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(engine.last_stats().size(), 1u);
  EXPECT_EQ(engine.last_stats()[0].num_matches, 1u);

  // A routed run reports itself in stats instead.
  auto routed = engine.Execute(
      "SELECT ID, COUNTP(clq3-unlb, SUBGRAPH(ID, 1)) FROM nodes");
  ASSERT_TRUE(routed.ok());
  ASSERT_EQ(engine.last_stats().size(), 1u);
  EXPECT_EQ(engine.last_stats()[0].fastpath_routed, 1u);
}

TEST(EngineTest, SemanticErrors) {
  Graph g = MakeGraph(2, {{0, 1}});
  QueryEngine engine(g);
  // Unknown pattern.
  EXPECT_FALSE(
      engine.Execute("SELECT COUNTP(nope, SUBGRAPH(ID, 1)) FROM nodes").ok());
  // Unknown subpattern.
  EXPECT_FALSE(engine
                   .Execute("PATTERN p {?A-?B;} SELECT COUNTSP(s, p, "
                            "SUBGRAPH(ID, 1)) FROM nodes")
                   .ok());
  // Pairwise neighborhood in single-table query.
  EXPECT_FALSE(engine
                   .Execute("PATTERN p {?A;} SELECT COUNTP(p, "
                            "SUBGRAPH-INTERSECTION(ID, ID, 1)) FROM nodes")
                   .ok());
  // Single-node neighborhood in pairwise query.
  EXPECT_FALSE(engine
                   .Execute("PATTERN p {?A;} SELECT COUNTP(p, SUBGRAPH(n1.ID, "
                            "1)) FROM nodes AS n1, nodes AS n2")
                   .ok());
  // Unknown alias in WHERE.
  EXPECT_FALSE(
      engine.Execute("SELECT ID FROM nodes WHERE zz.LABEL = 1").ok());
}

TEST(EngineTest, ResultTableSortAndCsv) {
  Graph g = MakeGraph(4, {{0, 1}, {0, 2}, {0, 3}});
  QueryEngine engine(g);
  engine.RegisterPattern(MakeSingleEdge());
  auto result = engine.Execute(
      "SELECT ID, COUNTP(single_edge, SUBGRAPH(ID, 1)) FROM nodes");
  ASSERT_TRUE(result.ok());
  result->SortByColumnDesc(1);
  EXPECT_EQ(IntAt(*result, 0, 0), 0);  // hub first
  std::ostringstream os;
  result->WriteCsv(os);
  EXPECT_NE(os.str().find("ID,COUNTP(single_edge,1)"), std::string::npos);
  EXPECT_FALSE(result->ToString().empty());
}

}  // namespace
}  // namespace egocensus

namespace egocensus {
namespace {

TEST(EngineOrderLimitTest, OrderByCountDescWithLimit) {
  Graph g = testing::MakeGraph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}});
  QueryEngine engine(g);
  engine.RegisterPattern(MakeSingleEdge());
  auto result = engine.Execute(
      "SELECT ID, COUNTP(single_edge, SUBGRAPH(ID, 1)) FROM nodes "
      "ORDER BY 2 DESC LIMIT 3");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 3u);
  // Node 0 has the densest ego net.
  EXPECT_EQ(std::get<std::int64_t>(result->At(0, 0)), 0);
  // Counts nonincreasing.
  for (std::size_t r = 1; r < result->NumRows(); ++r) {
    EXPECT_GE(std::get<std::int64_t>(result->At(r - 1, 1)),
              std::get<std::int64_t>(result->At(r, 1)));
  }
}

TEST(EngineOrderLimitTest, OrderAscAndMultipleKeys) {
  Graph g = testing::MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  QueryEngine engine(g);
  engine.RegisterPattern(MakeSingleEdge());
  auto result = engine.Execute(
      "SELECT ID, COUNTP(single_edge, SUBGRAPH(ID, 1)) FROM nodes "
      "ORDER BY 2 ASC, 1 DESC");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->NumRows(), 4u);
  // Smallest counts first; ties broken by id descending.
  EXPECT_LE(std::get<std::int64_t>(result->At(0, 1)),
            std::get<std::int64_t>(result->At(3, 1)));
  EXPECT_EQ(std::get<std::int64_t>(result->At(0, 0)), 3);  // count 1, id desc
  EXPECT_EQ(std::get<std::int64_t>(result->At(1, 0)), 0);
}

TEST(EngineOrderLimitTest, LimitZeroAndOutOfRangeColumn) {
  Graph g = testing::MakeGraph(3, {{0, 1}, {1, 2}});
  QueryEngine engine(g);
  auto empty = engine.Execute("SELECT ID FROM nodes LIMIT 0");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->NumRows(), 0u);
  EXPECT_FALSE(engine.Execute("SELECT ID FROM nodes ORDER BY 5").ok());
  EXPECT_FALSE(engine.Execute("SELECT ID FROM nodes ORDER BY 0").ok());
}

TEST(EngineOrderLimitTest, PairwiseOrderLimit) {
  Graph g = testing::MakeGraph(3, {{0, 1}, {1, 2}});
  QueryEngine engine(g);
  auto result = engine.Execute(
      "PATTERN n {?A;}\n"
      "SELECT n1.ID, n2.ID, "
      "COUNTP(n, SUBGRAPH-INTERSECTION(n1.ID, n2.ID, 1)) "
      "FROM nodes AS n1, nodes AS n2 WHERE n1.ID > n2.ID "
      "ORDER BY 3 DESC LIMIT 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(result->At(0, 2)), 2);
}

TEST(EngineCachingTest, RepeatedQueriesConsistent) {
  GeneratorOptions opts;
  opts.num_nodes = 120;
  opts.num_labels = 4;
  opts.seed = 67;
  Graph g = GeneratePreferentialAttachment(opts);
  QueryEngine engine(g);
  engine.RegisterPattern(MakeTriangle(true));
  const char* query = "SELECT ID, COUNTP(clq3, SUBGRAPH(ID, 2)) FROM nodes";
  auto first = engine.Execute(query);
  auto second = engine.Execute(query);  // uses cached indexes
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->NumRows(), second->NumRows());
  for (std::size_t r = 0; r < first->NumRows(); ++r) {
    EXPECT_EQ(std::get<std::int64_t>(first->At(r, 1)),
              std::get<std::int64_t>(second->At(r, 1)));
  }
}

}  // namespace
}  // namespace egocensus
