// Request-scoped observability end to end (docs/OBSERVABILITY.md, "Request
// telemetry"): request ids assigned uniquely under concurrency and echoed
// when client-propagated, the canonical wide log event (exactly one JSON
// line per request), the METRICS Prometheus exposition validated with a
// hand-rolled parser, the slow-query ring + Chrome-trace dump, and the
// governor annotation that stamps request ids into stop messages. Binds
// ephemeral ports and synchronizes on failpoints/counters, never sleeps.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/failpoints.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/request_context.h"
#include "net/server.h"
#include "obs/log.h"
#include "obs/obs.h"

namespace egocensus::net {
namespace {

constexpr const char* kTriangleQuery =
    "PATTERN t {?A-?B; ?B-?C; ?C-?A;} "
    "SELECT ID, COUNTP(t, SUBGRAPH(ID, 1)) FROM nodes";

constexpr const char* kHeavyQuery =
    "PATTERN t {?A-?B; ?B-?C; ?C-?A;} "
    "SELECT ID, COUNTP(t, SUBGRAPH(ID, 2)) FROM nodes";

Graph TestGraph(std::uint32_t nodes, std::uint32_t edges_per_node,
                std::uint64_t seed) {
  GeneratorOptions gen;
  gen.num_nodes = nodes;
  gen.edges_per_node = edges_per_node;
  gen.num_labels = 3;
  gen.seed = seed;
  return GeneratePreferentialAttachment(gen);
}

bool WaitFor(const std::function<bool()>& predicate) {
  for (int i = 0; i < 2000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

std::unique_ptr<CensusServer> StartServer(Graph graph,
                                          CensusServer::Options options) {
  options.listen.port = 0;
  auto server = std::make_unique<CensusServer>(options);
  EXPECT_TRUE(server->registry().Add("g", std::move(graph)).ok());
  EXPECT_TRUE(server->Start().ok());
  return server;
}

Endpoint EndpointOf(const CensusServer& server) {
  Endpoint endpoint;
  endpoint.host = "127.0.0.1";
  endpoint.port = server.port();
  return endpoint;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---- request ids ---------------------------------------------------------

TEST(NetObservabilityTest, ConcurrentClientsGetUniqueRequestIds) {
  auto server = StartServer(TestGraph(800, 4, 13), {});
  Endpoint endpoint = EndpointOf(*server);

  constexpr int kClients = 8;
  constexpr int kQueriesEach = 2;
  std::vector<std::thread> threads;
  std::vector<std::vector<std::string>> ids(kClients);
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect(endpoint);
      if (!client.ok()) {
        failures[c] = client.status().ToString();
        return;
      }
      for (int q = 0; q < kQueriesEach; ++q) {
        auto response =
            client->Call(Client::QueryRequest("g", kTriangleQuery));
        if (!response.ok()) {
          failures[c] = response.status().ToString();
          return;
        }
        ids[c].push_back(response->Header("request_id", ""));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const std::string& failure : failures) EXPECT_EQ(failure, "");

  std::set<std::string> unique;
  for (const auto& client_ids : ids) {
    for (const std::string& id : client_ids) {
      EXPECT_FALSE(id.empty());
      EXPECT_EQ(id[0], 'r') << "server-assigned ids are r<start>-<seq>";
      EXPECT_TRUE(ValidRequestId(id)) << id;
      unique.insert(id);
    }
  }
  EXPECT_EQ(unique.size(),
            static_cast<std::size_t>(kClients * kQueriesEach));
}

TEST(NetObservabilityTest, InvalidClientRequestIdIsReplaced) {
  auto server = StartServer(TestGraph(300, 4, 17), {});
  auto client = Client::Connect(EndpointOf(*server));
  ASSERT_TRUE(client.ok());

  Message request = Client::QueryRequest("g", kTriangleQuery);
  request.headers["request_id"] = "bad id\twith spaces!";
  auto response = client->Call(request);
  ASSERT_TRUE(response.ok());
  std::string echoed = response->Header("request_id", "");
  EXPECT_NE(echoed, "bad id\twith spaces!");
  EXPECT_TRUE(ValidRequestId(echoed)) << echoed;
}

TEST(NetObservabilityTest, ClientRequestIdEchoesOnEveryResponseType) {
  auto server = StartServer(TestGraph(300, 4, 17), {});
  auto client = Client::Connect(EndpointOf(*server));
  ASSERT_TRUE(client.ok());

  Message query = Client::QueryRequest("g", kTriangleQuery);
  query.headers["request_id"] = "corr-query.1";
  auto result = client->Call(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->type, FrameType::kResult);
  EXPECT_EQ(result->Header("request_id", ""), "corr-query.1");

  // ERROR responses echo too (unknown graph).
  Message bad = Client::QueryRequest("nope", kTriangleQuery);
  bad.headers["request_id"] = "corr-err:2";
  auto error = client->Call(bad);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->type, FrameType::kError);
  EXPECT_EQ(error->Header("request_id", ""), "corr-err:2");

  // STATUS responses echo and record the id in the recent ring.
  Message status_req = Client::StatusRequest();
  status_req.headers["request_id"] = "corr-status_3";
  auto status = client->Call(status_req);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->Header("request_id", ""), "corr-status_3");
  EXPECT_NE(status->body.find("corr-query.1"), std::string::npos)
      << "STATUS recent ring must carry request ids";
  EXPECT_EQ(server->VerbCount(FrameType::kQuery), 2u);
  EXPECT_EQ(server->VerbCount(FrameType::kStatus), 1u);
}

// ---- the wide log event --------------------------------------------------

#if EGO_OBS_ENABLED
TEST(NetObservabilityTest, PropagatedIdAppearsInExactlyOneLogLine) {
  obs::Logger& logger = obs::Logger::Global();
  logger.ResetForTest();
  std::string log_path = ::testing::TempDir() + "/net_obs_wide_event.jsonl";
  std::remove(log_path.c_str());
  ASSERT_TRUE(logger.OpenFile(log_path).ok());

  auto server = StartServer(TestGraph(400, 4, 19), {});
  auto client = Client::Connect(EndpointOf(*server));
  ASSERT_TRUE(client.ok());

  Message request = Client::QueryRequest("g", kTriangleQuery);
  request.headers["request_id"] = "wide-evt-7";
  auto response = client->Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Header("request_id", ""), "wide-evt-7");

  // The log line is written before the response hits the wire, but flush
  // ordering is the logger's; written() is the barrier.
  ASSERT_TRUE(WaitFor([&logger] { return logger.written() >= 1; }));
  logger.ResetForTest();  // close the sink so the read sees complete lines

  std::ifstream in(log_path);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  int matching = 0;
  std::string the_line;
  for (const std::string& line : SplitLines(content.str())) {
    if (line.find("\"request_id\":\"wide-evt-7\"") != std::string::npos) {
      ++matching;
      the_line = line;
    }
  }
  EXPECT_EQ(matching, 1) << "exactly one wide event per request";
  EXPECT_NE(the_line.find("\"event\":\"request\""), std::string::npos);
  EXPECT_NE(the_line.find("\"verb\":\"QUERY\""), std::string::npos);
  EXPECT_NE(the_line.find("\"graph\":\"g\""), std::string::npos);
  EXPECT_NE(the_line.find("\"queue_us\":"), std::string::npos);
  EXPECT_NE(the_line.find("\"execute_us\":"), std::string::npos);
  EXPECT_NE(the_line.find("\"stop_reason\":\"none\""), std::string::npos);
  EXPECT_NE(the_line.find("\"rows\":"), std::string::npos);
  EXPECT_NE(the_line.find("\"pattern_nodes\":3"), std::string::npos);
  EXPECT_NE(the_line.find("\"k\":1"), std::string::npos);
  EXPECT_EQ(the_line.front(), '{');
  EXPECT_EQ(the_line.back(), '}');
}

TEST(NetObservabilityTest, RateLimitDropsExcessLines) {
  obs::Logger& logger = obs::Logger::Global();
  logger.ResetForTest();
  std::string log_path = ::testing::TempDir() + "/net_obs_rate_limit.jsonl";
  std::remove(log_path.c_str());
  ASSERT_TRUE(logger.OpenFile(log_path).ok());
  logger.SetRateLimit(1);

  auto server = StartServer(TestGraph(200, 3, 23), {});
  auto client = Client::Connect(EndpointOf(*server));
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 5; ++i) {
    auto response = client->Call(Client::StatusRequest());
    ASSERT_TRUE(response.ok());
  }
  ASSERT_TRUE(WaitFor(
      [&logger] { return logger.written() + logger.dropped() >= 5; }));
  EXPECT_GE(logger.dropped(), 1u)
      << "five STATUS requests in one window must exceed 1 line/s";
  logger.ResetForTest();
}
#endif  // EGO_OBS_ENABLED

// ---- METRICS exposition ----------------------------------------------------

/// Hand-rolled Prometheus text-format (v0.0.4) validator: every sample's
/// family must be declared by a preceding # TYPE, sample lines must carry a
/// parseable value, and histogram bucket series must be cumulative.
void ValidateExposition(const std::string& text) {
  std::map<std::string, std::string> family_type;  // family -> counter|gauge|histogram
  std::map<std::string, double> last_bucket;       // series prefix -> last le value
  for (const std::string& line : SplitLines(text)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream in(line);
      std::string hash, kind, family, rest;
      in >> hash >> kind >> family;
      if (kind == "TYPE") {
        in >> rest;
        EXPECT_TRUE(rest == "counter" || rest == "gauge" ||
                    rest == "histogram")
            << line;
        family_type[family] = rest;
      }
      continue;
    }
    // Sample: name{labels} value  (labels optional).
    std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    char* end = nullptr;
    double parsed = std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "unparseable sample value: " << line;
    EXPECT_GE(parsed, 0.0) << line;

    std::string base = name.substr(0, name.find('{'));
    std::string family = base;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      std::size_t n = std::string(suffix).size();
      if (family.size() > n &&
          family.compare(family.size() - n, n, suffix) == 0 &&
          family_type.count(family.substr(0, family.size() - n))) {
        family = family.substr(0, family.size() - n);
      }
    }
    EXPECT_TRUE(family_type.count(family))
        << "sample with no preceding # TYPE: " << line;

    // Cumulative-bucket check: within one series, counts never decrease as
    // `le` grows (buckets arrive in ascending order; +Inf is last).
    if (base.size() > 7 && base.compare(base.size() - 7, 7, "_bucket") == 0) {
      std::size_t le = name.rfind("le=\"");
      ASSERT_NE(le, std::string::npos) << line;
      std::string series = name.substr(0, le);
      auto it = last_bucket.find(series);
      if (it != last_bucket.end()) {
        EXPECT_GE(parsed, it->second) << "non-cumulative buckets: " << line;
      }
      last_bucket[series] = parsed;
    }
  }
  EXPECT_FALSE(family_type.empty()) << "exposition had no families";
}

TEST(NetObservabilityTest, MetricsExpositionParsesAndCountsTraffic) {
#if EGO_OBS_ENABLED
  obs::SetEnabled(true);
#endif
  auto server = StartServer(TestGraph(600, 4, 29), {});
  auto client = Client::Connect(EndpointOf(*server));
  ASSERT_TRUE(client.ok());

  auto query = client->Call(Client::QueryRequest("g", kTriangleQuery));
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->Header("exec_status", ""), "OK");

  auto metrics = client->Call(Client::MetricsRequest());
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->type, FrameType::kResult);
  EXPECT_EQ(metrics->Header("content", ""), "text/plain; version=0.0.4");

  const std::string& body = metrics->body;
  ValidateExposition(body);

  // The daemon families are always compiled: the QUERY tally and the
  // per-graph fastpath routing counters must label this traffic.
  EXPECT_NE(body.find("egocensus_daemon_requests_total{verb=\"QUERY\"} 1"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("egocensus_daemon_uptime_seconds"), std::string::npos);
  EXPECT_NE(body.find("egocensus_daemon_fastpath_total{graph=\"g\""),
            std::string::npos)
      << body;

#if EGO_OBS_ENABLED
  // With the registry on, the request-scoped families appear too, labeled
  // by verb and graph, and the latency histogram renders buckets.
  EXPECT_NE(body.find(
                "egocensus_server_requests_total{verb=\"QUERY\",graph=\"g\"}"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("egocensus_server_latency_us"), std::string::npos);
  EXPECT_NE(body.find("_bucket{"), std::string::npos);
  obs::SetEnabled(false);
#endif
}

// ---- slow-query capture ----------------------------------------------------

TEST(NetObservabilityTest, SlowQueryRingCapturesDelayedRequest) {
  failpoints::DisarmAll();
  CensusServer::Options options;
  options.slow_query_threshold_ms = 50;
  options.slow_ring_capacity = 4;
  auto server = StartServer(TestGraph(800, 4, 31), options);
  auto client = Client::Connect(EndpointOf(*server));
  ASSERT_TRUE(client.ok());

  // A fast query stays out of the ring.
  auto fast = client->Call(Client::QueryRequest("g", kTriangleQuery));
  ASSERT_TRUE(fast.ok());

  // Park one checkpoint past the threshold so the capture is deterministic.
  failpoints::Arm("exec/checkpoint", 1, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  Message slow_req = Client::QueryRequest("g", kTriangleQuery);
  slow_req.headers["request_id"] = "slow-one";
  auto slow = client->Call(slow_req);
  failpoints::DisarmAll();
  ASSERT_TRUE(slow.ok());
  ASSERT_EQ(slow->Header("exec_status", ""), "OK");

  auto captured = server->SlowQueries();
  ASSERT_GE(captured.size(), 1u);
  EXPECT_EQ(captured.front().request_id, "slow-one")
      << "the delayed request is the newest capture";
  EXPECT_GE(captured.front().latency_us, 100000u);
  EXPECT_FALSE(captured.front().spans.empty())
      << "capture carries the span tree";

  // STATUS surfaces the capture summary...
  auto status = client->Call(Client::StatusRequest());
  ASSERT_TRUE(status.ok());
  EXPECT_NE(status->body.find("\"slow_queries\""), std::string::npos);
  EXPECT_NE(status->body.find("slow-one"), std::string::npos);

  // ...and the slow_trace header swaps the body for a Chrome trace.
  Message trace_req = Client::StatusRequest();
  trace_req.headers["slow_trace"] = "slow-one";
  auto trace = client->Call(trace_req);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->type, FrameType::kResult);
  EXPECT_NE(trace->body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace->body.find("slow-one"), std::string::npos);
  EXPECT_NE(trace->body.find("\"ph\": \"X\""), std::string::npos);

  // "latest" resolves to the same capture; unknown ids are NOT_FOUND.
  Message latest_req = Client::StatusRequest();
  latest_req.headers["slow_trace"] = "latest";
  auto latest = client->Call(latest_req);
  ASSERT_TRUE(latest.ok());
  EXPECT_NE(latest->body.find("slow-one"), std::string::npos);

  Message missing_req = Client::StatusRequest();
  missing_req.headers["slow_trace"] = "no-such-id";
  auto missing = client->Call(missing_req);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->type, FrameType::kError);
}

// ---- governor annotation ---------------------------------------------------

TEST(NetObservabilityTest, GovernedStopMessageCarriesRequestId) {
  auto server = StartServer(TestGraph(8000, 8, 19), {});
  auto client = Client::Connect(EndpointOf(*server));
  ASSERT_TRUE(client.ok());

  Message request = Client::QueryRequest("g", kHeavyQuery);
  request.headers["deadline_ms"] = "1";
  request.headers["request_id"] = "stopped-42";
  auto response = client->Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->type, FrameType::kResult);
  EXPECT_EQ(response->Header("stop_reason", ""), "deadline_exceeded");
  EXPECT_NE(response->Header("exec_message", "").find("request stopped-42"),
            std::string::npos)
      << "exec_message was: " << response->Header("exec_message", "");
}

// ---- STATUS schema ---------------------------------------------------------

TEST(NetObservabilityTest, StatusJsonCarriesSchemaAndVerbCounters) {
  auto server = StartServer(TestGraph(300, 4, 37), {});
  auto client = Client::Connect(EndpointOf(*server));
  ASSERT_TRUE(client.ok());
  auto query = client->Call(Client::QueryRequest("g", kTriangleQuery));
  ASSERT_TRUE(query.ok());

  auto status = client->Call(Client::StatusRequest());
  ASSERT_TRUE(status.ok());
  const std::string& body = status->body;
  EXPECT_NE(body.find("\"schema\": 2"), std::string::npos);
  EXPECT_NE(body.find("\"verbs\""), std::string::npos);
  // Schema 2 additions: queue state in "admission", per-tenant accounting.
  EXPECT_NE(body.find("\"queued\""), std::string::npos);
  EXPECT_NE(body.find("\"draining\""), std::string::npos);
  EXPECT_NE(body.find("\"tenants\""), std::string::npos);
  EXPECT_NE(body.find("\"QUERY\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"STATUS\": 1"), std::string::npos);
  EXPECT_NE(body.find("\"uptime_us\""), std::string::npos);
}

}  // namespace
}  // namespace egocensus::net
