// Tests for the paper's "future work" extensions (top-K census and
// sampling-based approximate census) and the extra workload generators.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "census/approx.h"
#include "census/census.h"
#include "census/topk.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "pattern/catalog.h"
#include "tests/test_util.h"

namespace egocensus {
namespace {

using testing::MakeGraph;

Graph TestPaGraph(std::uint32_t nodes, std::uint32_t labels,
                  std::uint64_t seed) {
  GeneratorOptions gen;
  gen.num_nodes = nodes;
  gen.edges_per_node = 4;
  gen.num_labels = labels;
  gen.seed = seed;
  return GeneratePreferentialAttachment(gen);
}

// ---- Top-K census ----

TEST(TopKCensusTest, MatchesFullCensusRanking) {
  Graph g = TestPaGraph(300, 1, 5);
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);

  CensusOptions full_opts;
  full_opts.algorithm = CensusAlgorithm::kNdPvot;
  full_opts.k = 2;
  auto full = RunCensus(g, tri, focal, full_opts);
  ASSERT_TRUE(full.ok());

  TopKOptions topk_opts;
  topk_opts.k = 2;
  topk_opts.top_k = 10;
  auto topk = RunTopKCensus(g, tri, focal, topk_opts);
  ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  ASSERT_EQ(topk->top.size(), 10u);

  // Reference ranking from the full census.
  std::vector<std::pair<std::uint64_t, NodeId>> reference;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    reference.emplace_back(full->counts[n], n);
  }
  std::sort(reference.begin(), reference.end(), [](const auto& a,
                                                   const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(topk->top[i].first, reference[i].second) << "rank " << i;
    EXPECT_EQ(topk->top[i].second, reference[i].first) << "rank " << i;
  }
}

TEST(TopKCensusTest, PrunesExactEvaluations) {
  Graph g = TestPaGraph(2000, 1, 6);
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  TopKOptions opts;
  opts.k = 2;
  opts.top_k = 10;
  auto topk = RunTopKCensus(g, tri, focal, opts);
  ASSERT_TRUE(topk.ok());
  // The bound ordering must prune the vast majority of exact evaluations on
  // a skewed graph.
  EXPECT_LT(topk->exact_evaluations, focal.size() / 2);
}

TEST(TopKCensusTest, TopKLargerThanFocal) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  TopKOptions opts;
  opts.k = 1;
  opts.top_k = 100;
  auto topk = RunTopKCensus(g, tri, focal, opts);
  ASSERT_TRUE(topk.ok());
  EXPECT_EQ(topk->top.size(), 4u);
  // Sorted by count descending.
  for (std::size_t i = 1; i < topk->top.size(); ++i) {
    EXPECT_GE(topk->top[i - 1].second, topk->top[i].second);
  }
}

TEST(TopKCensusTest, SubpatternSupported) {
  Pattern triad = MakeCoordinatorTriad();
  Graph g(true);
  g.AddNodes(5);
  for (NodeId n = 0; n < 5; ++n) CheckOk(g.SetLabel(n, 1), "test fixture setup");
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  CheckOk(g.Finalize(), "test fixture setup");
  auto focal = AllNodes(g);
  TopKOptions opts;
  opts.k = 0;
  opts.top_k = 1;
  opts.subpattern = "coordinator";
  auto topk = RunTopKCensus(g, triad, focal, opts);
  ASSERT_TRUE(topk.ok());
  ASSERT_EQ(topk->top.size(), 1u);
  EXPECT_EQ(topk->top[0].first, 1u);
  EXPECT_EQ(topk->top[0].second, 2u);
}

TEST(TopKCensusTest, FocalSubsetRespected) {
  Graph g = TestPaGraph(200, 1, 7);
  Pattern tri = MakeTriangle(false);
  std::vector<NodeId> focal;
  for (NodeId n = 100; n < 200; ++n) focal.push_back(n);
  TopKOptions opts;
  opts.k = 2;
  opts.top_k = 5;
  auto topk = RunTopKCensus(g, tri, focal, opts);
  ASSERT_TRUE(topk.ok());
  for (const auto& [node, count] : topk->top) {
    EXPECT_GE(node, 100u);
  }
}

TEST(TopKCensusTest, Errors) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  Pattern tri = MakeTriangle(false);
  Pattern unprepared;
  unprepared.AddNode("A");
  auto focal = AllNodes(g);
  EXPECT_FALSE(RunTopKCensus(g, unprepared, focal, TopKOptions()).ok());
  TopKOptions bad_sub;
  bad_sub.subpattern = "nope";
  EXPECT_FALSE(RunTopKCensus(g, tri, focal, bad_sub).ok());
}

// ---- Approximate census ----

TEST(ApproximateCensusTest, FullRateIsExact) {
  Graph g = TestPaGraph(300, 1, 8);
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  CensusOptions exact_opts;
  exact_opts.algorithm = CensusAlgorithm::kNdPvot;
  exact_opts.k = 2;
  auto exact = RunCensus(g, tri, focal, exact_opts);
  ASSERT_TRUE(exact.ok());

  ApproximateCensusOptions approx_opts;
  approx_opts.k = 2;
  approx_opts.sample_rate = 1.0;
  auto approx = RunApproximateCensus(g, tri, focal, approx_opts);
  ASSERT_TRUE(approx.ok());
  EXPECT_EQ(approx->sampled_matches, approx->stats.num_matches);
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    EXPECT_DOUBLE_EQ(approx->estimates[n],
                     static_cast<double>(exact->counts[n]));
  }
}

TEST(ApproximateCensusTest, EstimatesCloseOnLargeCounts) {
  Graph g = TestPaGraph(1500, 1, 9);
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  CensusOptions exact_opts;
  exact_opts.algorithm = CensusAlgorithm::kNdPvot;
  exact_opts.k = 2;
  auto exact = RunCensus(g, tri, focal, exact_opts);
  ASSERT_TRUE(exact.ok());

  ApproximateCensusOptions approx_opts;
  approx_opts.k = 2;
  approx_opts.sample_rate = 0.5;
  approx_opts.seed = 3;
  auto approx = RunApproximateCensus(g, tri, focal, approx_opts);
  ASSERT_TRUE(approx.ok());
  EXPECT_GT(approx->sampled_matches, 0u);
  EXPECT_LT(approx->sampled_matches, approx->stats.num_matches);

  // Relative error on large counts should be modest (std err ~ sqrt(1/(p n))).
  double worst = 0;
  int checked = 0;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (exact->counts[n] < 200) continue;
    ++checked;
    double rel = std::abs(approx->estimates[n] -
                          static_cast<double>(exact->counts[n])) /
                 static_cast<double>(exact->counts[n]);
    worst = std::max(worst, rel);
  }
  ASSERT_GT(checked, 0);
  EXPECT_LT(worst, 0.30);
}

TEST(ApproximateCensusTest, UnbiasedAcrossSeeds) {
  Graph g = TestPaGraph(400, 1, 10);
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  CensusOptions exact_opts;
  exact_opts.algorithm = CensusAlgorithm::kNdPvot;
  exact_opts.k = 1;
  auto exact = RunCensus(g, tri, focal, exact_opts);
  ASSERT_TRUE(exact.ok());
  NodeId probe = 0;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (exact->counts[n] > exact->counts[probe]) probe = n;
  }
  ASSERT_GT(exact->counts[probe], 10u);

  double sum = 0;
  const int trials = 24;
  for (int seed = 0; seed < trials; ++seed) {
    ApproximateCensusOptions opts;
    opts.k = 1;
    opts.sample_rate = 0.3;
    opts.seed = 1000 + seed;
    auto approx = RunApproximateCensus(g, tri, focal, opts);
    ASSERT_TRUE(approx.ok());
    sum += approx->estimates[probe];
  }
  double mean = sum / trials;
  double truth = static_cast<double>(exact->counts[probe]);
  EXPECT_NEAR(mean, truth, truth * 0.25);
}

TEST(ApproximateCensusTest, InvalidRateRejected) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  ApproximateCensusOptions opts;
  opts.sample_rate = 0.0;
  EXPECT_FALSE(RunApproximateCensus(g, tri, focal, opts).ok());
  opts.sample_rate = 1.5;
  EXPECT_FALSE(RunApproximateCensus(g, tri, focal, opts).ok());
}

// ---- Extra generators ----

TEST(WattsStrogatzTest, RingWithoutRewiring) {
  Graph g = GenerateWattsStrogatz(20, 2, 0.0, 1, 1);
  EXPECT_EQ(g.NumNodes(), 20u);
  EXPECT_EQ(g.NumEdges(), 40u);  // n * k_each_side
  // Pure ring lattice: node 0 adjacent to 1, 2, 18, 19.
  EXPECT_TRUE(g.HasUndirectedEdge(0, 1));
  EXPECT_TRUE(g.HasUndirectedEdge(0, 2));
  EXPECT_TRUE(g.HasUndirectedEdge(0, 18));
  EXPECT_TRUE(g.HasUndirectedEdge(0, 19));
  EXPECT_FALSE(g.HasUndirectedEdge(0, 10));
}

TEST(WattsStrogatzTest, RewiringShrinksDiameterKeepsEdges) {
  Graph ring = GenerateWattsStrogatz(500, 3, 0.0, 1, 2);
  Graph small_world = GenerateWattsStrogatz(500, 3, 0.2, 1, 2);
  // Edge counts comparable (rewiring can drop a few on conflicts).
  EXPECT_GT(small_world.NumEdges(), ring.NumEdges() * 9 / 10);
  BfsWorkspace bfs;
  bfs.Run(ring, 0, 100000);
  std::uint32_t ring_ecc = 0;
  for (NodeId n : bfs.visited()) {
    ring_ecc = std::max(ring_ecc, bfs.DistanceTo(n));
  }
  bfs.Run(small_world, 0, 100000);
  std::uint32_t sw_ecc = 0;
  for (NodeId n : bfs.visited()) {
    sw_ecc = std::max(sw_ecc, bfs.DistanceTo(n));
  }
  EXPECT_LT(sw_ecc, ring_ecc / 2);  // the small-world effect
}

TEST(WattsStrogatzTest, Deterministic) {
  Graph a = GenerateWattsStrogatz(100, 2, 0.3, 2, 7);
  Graph b = GenerateWattsStrogatz(100, 2, 0.3, 2, 7);
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (EdgeId e = 0; e < a.NumEdges(); ++e) {
    EXPECT_EQ(a.EdgeEndpoints(e), b.EdgeEndpoints(e));
  }
}

TEST(RmatTest, SizesAndSkew) {
  Graph g = GenerateRmat(12, 20000, 0.45, 0.22, 0.22, 1, 3);
  EXPECT_EQ(g.NumNodes(), 4096u);
  EXPECT_GT(g.NumEdges(), 18000u);  // a few rejections allowed
  std::uint32_t max_degree = 0;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    max_degree = std::max(max_degree, g.Degree(n));
  }
  // Corner-heavy R-MAT produces strong degree skew.
  EXPECT_GT(max_degree, 60u);
}

TEST(RmatTest, NoDuplicatesOrSelfLoops) {
  Graph g = GenerateRmat(8, 800, 0.45, 0.22, 0.22, 2, 4);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    auto [u, v] = g.EdgeEndpoints(e);
    EXPECT_NE(u, v);
    auto key = std::minmax(u, v);
    EXPECT_TRUE(seen.emplace(key.first, key.second).second);
  }
}

TEST(ExtraGeneratorsTest, CensusEnginesAgreeOnNewWorkloads) {
  // Integration: the cross-engine agreement property must hold on the
  // small-world and R-MAT workloads too.
  std::vector<Graph> graphs;
  graphs.push_back(GenerateWattsStrogatz(150, 3, 0.2, 1, 11));
  graphs.push_back(GenerateRmat(8, 700, 0.45, 0.22, 0.22, 1, 12));
  Pattern tri = MakeTriangle(false);
  for (const Graph& g : graphs) {
    auto focal = AllNodes(g);
    CensusOptions base;
    base.k = 2;
    base.algorithm = CensusAlgorithm::kNdBas;
    auto reference = RunCensus(g, tri, focal, base);
    ASSERT_TRUE(reference.ok());
    for (auto algorithm :
         {CensusAlgorithm::kNdPvot, CensusAlgorithm::kNdDiff,
          CensusAlgorithm::kPtBas, CensusAlgorithm::kPtOpt}) {
      CensusOptions opts = base;
      opts.algorithm = algorithm;
      auto counts = RunCensus(g, tri, focal, opts);
      ASSERT_TRUE(counts.ok());
      EXPECT_EQ(counts->counts, reference->counts)
          << CensusAlgorithmName(algorithm);
    }
  }
}

}  // namespace
}  // namespace egocensus
