#include "census/census.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "pattern/catalog.h"
#include "pattern/pattern_parser.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace egocensus {
namespace {

using testing::MakeGraph;

std::vector<std::uint64_t> Counts(const Graph& g, const Pattern& p,
                                  std::span<const NodeId> focal,
                                  CensusOptions opts) {
  auto r = RunCensus(g, p, focal, opts);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r->counts) : std::vector<std::uint64_t>{};
}

constexpr CensusAlgorithm kAllAlgorithms[] = {
    CensusAlgorithm::kNdBas, CensusAlgorithm::kNdPvot,
    CensusAlgorithm::kNdDiff, CensusAlgorithm::kPtBas,
    CensusAlgorithm::kPtOpt, CensusAlgorithm::kPtRnd};

TEST(CensusTest, TriangleCountsOnSmallGraph) {
  // Two triangles sharing edge 1-2: {0,1,2} and {1,2,3}; plus pendant 4.
  Graph g = MakeGraph(5, {{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  for (auto algorithm : kAllAlgorithms) {
    CensusOptions opts;
    opts.algorithm = algorithm;
    opts.k = 1;
    auto counts = Counts(g, tri, focal, opts);
    // k=1 neighborhoods: node 0 sees {0,1,2} -> 1 triangle; node 1 and 2
    // see everything except 4 -> 2; node 3 sees {1,2,3,4} -> 1; node 4
    // sees {3,4} -> 0.
    EXPECT_EQ(counts[0], 1u) << CensusAlgorithmName(algorithm);
    EXPECT_EQ(counts[1], 2u) << CensusAlgorithmName(algorithm);
    EXPECT_EQ(counts[2], 2u) << CensusAlgorithmName(algorithm);
    EXPECT_EQ(counts[3], 1u) << CensusAlgorithmName(algorithm);
    EXPECT_EQ(counts[4], 0u) << CensusAlgorithmName(algorithm);
  }
}

TEST(CensusTest, DegreeViaSingleNodePattern) {
  // COUNTP(single_node, SUBGRAPH(ID, 1)) = degree + 1 (the node itself).
  Graph g = MakeGraph(4, {{0, 1}, {0, 2}, {0, 3}});
  Pattern node = MakeSingleNode();
  auto focal = AllNodes(g);
  for (auto algorithm : kAllAlgorithms) {
    CensusOptions opts;
    opts.algorithm = algorithm;
    opts.k = 1;
    auto counts = Counts(g, node, focal, opts);
    EXPECT_EQ(counts[0], 4u) << CensusAlgorithmName(algorithm);
    EXPECT_EQ(counts[1], 2u) << CensusAlgorithmName(algorithm);
  }
}

TEST(CensusTest, KZeroCountsOnlySelf) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  Pattern node = MakeSingleNode();
  auto focal = AllNodes(g);
  for (auto algorithm : kAllAlgorithms) {
    CensusOptions opts;
    opts.algorithm = algorithm;
    opts.k = 0;
    auto counts = Counts(g, node, focal, opts);
    for (NodeId n = 0; n < 3; ++n) {
      EXPECT_EQ(counts[n], 1u) << CensusAlgorithmName(algorithm);
    }
  }
}

TEST(CensusTest, FocalSubsetOnlyCounted) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  Pattern tri = MakeTriangle(false);
  std::vector<NodeId> focal = {1, 3};
  for (auto algorithm : kAllAlgorithms) {
    CensusOptions opts;
    opts.algorithm = algorithm;
    opts.k = 1;
    auto counts = Counts(g, tri, focal, opts);
    EXPECT_EQ(counts[0], 0u) << CensusAlgorithmName(algorithm);  // not focal
    EXPECT_EQ(counts[1], 1u) << CensusAlgorithmName(algorithm);
    // N_1(3) = {2, 3} does not contain the triangle {0, 1, 2}.
    EXPECT_EQ(counts[3], 0u) << CensusAlgorithmName(algorithm);
    // With k = 2 node 3 reaches the whole triangle.
    opts.k = 2;
    auto counts2 = Counts(g, tri, focal, opts);
    EXPECT_EQ(counts2[3], 1u) << CensusAlgorithmName(algorithm);
  }
}

TEST(CensusTest, SubpatternCoordinatorAtKZero) {
  // Table I row 4: count triads in which the focal node is the coordinator.
  Graph g(true);
  g.AddNodes(5);
  for (NodeId n = 0; n < 5; ++n) CheckOk(g.SetLabel(n, 1), "test fixture setup");
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);  // triad 0->1->2, coordinator 1
  g.AddEdge(1, 3);  // triad 0->1->3, coordinator 1
  g.AddEdge(3, 4);  // triad 1->3->4, coordinator 3
  CheckOk(g.Finalize(), "test fixture setup");
  Pattern triad = MakeCoordinatorTriad();
  auto focal = AllNodes(g);
  for (auto algorithm : kAllAlgorithms) {
    CensusOptions opts;
    opts.algorithm = algorithm;
    opts.k = 0;
    opts.subpattern = "coordinator";
    auto counts = Counts(g, triad, focal, opts);
    EXPECT_EQ(counts[0], 0u) << CensusAlgorithmName(algorithm);
    EXPECT_EQ(counts[1], 2u) << CensusAlgorithmName(algorithm);
    EXPECT_EQ(counts[3], 1u) << CensusAlgorithmName(algorithm);
    EXPECT_EQ(counts[4], 0u) << CensusAlgorithmName(algorithm);
  }
}

TEST(CensusTest, UnknownSubpatternRejected) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  Pattern edge = MakeSingleEdge();
  CensusOptions opts;
  opts.subpattern = "missing";
  auto focal = AllNodes(g);
  EXPECT_FALSE(RunCensus(g, edge, focal, opts).ok());
}

TEST(CensusTest, UnpreparedPatternRejected) {
  Graph g = MakeGraph(2, {{0, 1}});
  Pattern p;
  p.AddNode("A");
  auto focal = AllNodes(g);
  EXPECT_FALSE(RunCensus(g, p, focal, CensusOptions()).ok());
}

TEST(CensusTest, FocalOutOfRangeRejected) {
  Graph g = MakeGraph(2, {{0, 1}});
  Pattern node = MakeSingleNode();
  std::vector<NodeId> focal = {7};
  EXPECT_FALSE(RunCensus(g, node, focal, CensusOptions()).ok());
}

// ---- Cross-validation property suite: every algorithm must agree with
// ND-BAS on random graphs, across patterns, radii and label regimes. ----

struct CensusCase {
  const char* name;
  Pattern (*make)();
  bool labeled_graph;
  std::uint32_t k;
};

Pattern TriUnlb() { return MakeTriangle(false); }
Pattern TriLb() { return MakeTriangle(true); }
Pattern SqrUnlb() { return MakeSquare(false); }
Pattern EdgeP() { return MakeSingleEdge(); }
Pattern NodeP() { return MakeSingleNode(); }
Pattern Path3() { return MakePath(3, false); }

class CensusAgreementTest
    : public ::testing::TestWithParam<std::tuple<CensusCase, std::uint64_t>> {
};

TEST_P(CensusAgreementTest, AllAlgorithmsAgree) {
  const auto& [test_case, seed] = GetParam();
  GeneratorOptions gopts;
  gopts.num_nodes = 120;
  gopts.edges_per_node = 3;
  gopts.num_labels = test_case.labeled_graph ? 4 : 1;
  gopts.seed = seed;
  Graph g = GeneratePreferentialAttachment(gopts);
  Pattern pattern = test_case.make();

  // Focal set: a deterministic subset plus all nodes on alternate seeds.
  std::vector<NodeId> focal;
  if (seed % 2 == 0) {
    focal = AllNodes(g);
  } else {
    for (NodeId n = 0; n < g.NumNodes(); n += 3) focal.push_back(n);
  }

  CensusOptions base;
  base.k = test_case.k;
  base.algorithm = CensusAlgorithm::kNdBas;
  auto reference = Counts(g, pattern, focal, base);

  for (auto algorithm :
       {CensusAlgorithm::kNdPvot, CensusAlgorithm::kNdDiff,
        CensusAlgorithm::kPtBas, CensusAlgorithm::kPtOpt,
        CensusAlgorithm::kPtRnd}) {
    CensusOptions opts = base;
    opts.algorithm = algorithm;
    auto counts = Counts(g, pattern, focal, opts);
    ASSERT_EQ(counts.size(), reference.size());
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      ASSERT_EQ(counts[n], reference[n])
          << CensusAlgorithmName(algorithm) << " node " << n << " case "
          << test_case.name << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PatternsRadiiSeeds, CensusAgreementTest,
    ::testing::Combine(
        ::testing::Values(CensusCase{"tri_unlb_k1", &TriUnlb, false, 1},
                          CensusCase{"tri_unlb_k2", &TriUnlb, false, 2},
                          CensusCase{"tri_lb_k2", &TriLb, true, 2},
                          CensusCase{"sqr_k2", &SqrUnlb, false, 2},
                          CensusCase{"edge_k1", &EdgeP, false, 1},
                          CensusCase{"edge_k3", &EdgeP, false, 3},
                          CensusCase{"node_k2", &NodeP, false, 2},
                          CensusCase{"path3_lb_k2", &Path3, true, 2}),
        ::testing::Values(2u, 3u, 5u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(CensusAgreementTest, SubpatternAcrossAlgorithms) {
  // Wedge pattern with mid-node subpattern over a random graph, k = 1:
  // counts wedges centered within the focal node's 1-hop neighborhood.
  auto wedge = ParsePattern(
      "PATTERN wedge {?A-?B; ?B-?C; SUBPATTERN mid {?B;}}");
  ASSERT_TRUE(wedge.ok());
  GeneratorOptions gopts;
  gopts.num_nodes = 80;
  gopts.edges_per_node = 2;
  gopts.seed = 77;
  Graph g = GeneratePreferentialAttachment(gopts);
  auto focal = AllNodes(g);

  CensusOptions base;
  base.k = 1;
  base.subpattern = "mid";
  base.algorithm = CensusAlgorithm::kNdBas;
  auto reference = Counts(g, *wedge, focal, base);
  for (auto algorithm :
       {CensusAlgorithm::kNdPvot, CensusAlgorithm::kNdDiff,
        CensusAlgorithm::kPtBas, CensusAlgorithm::kPtOpt}) {
    CensusOptions opts = base;
    opts.algorithm = algorithm;
    auto counts = Counts(g, *wedge, focal, opts);
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      ASSERT_EQ(counts[n], reference[n])
          << CensusAlgorithmName(algorithm) << " node " << n;
    }
  }
}

TEST(CensusAgreementTest, PtOptionVariantsAgree) {
  GeneratorOptions gopts;
  gopts.num_nodes = 150;
  gopts.num_labels = 4;
  gopts.seed = 31;
  Graph g = GeneratePreferentialAttachment(gopts);
  Pattern tri = MakeTriangle(true);
  auto focal = AllNodes(g);

  CensusOptions reference_opts;
  reference_opts.k = 2;
  reference_opts.algorithm = CensusAlgorithm::kNdBas;
  auto reference = Counts(g, tri, focal, reference_opts);

  struct Variant {
    const char* name;
    std::uint32_t centers;
    bool random_centers;
    ClusteringMode clustering;
    std::uint32_t clusters;
  };
  const Variant variants[] = {
      {"no_centers", 0, false, ClusteringMode::kNone, 0},
      {"few_centers", 4, false, ClusteringMode::kKMeans, 0},
      {"random_centers", 8, true, ClusteringMode::kKMeans, 0},
      {"random_clustering", 12, false, ClusteringMode::kRandom, 10},
      {"many_clusters", 12, false, ClusteringMode::kKMeans, 64},
      {"one_cluster", 12, false, ClusteringMode::kKMeans, 1},
  };
  for (const auto& variant : variants) {
    CensusOptions opts;
    opts.k = 2;
    opts.algorithm = CensusAlgorithm::kPtOpt;
    opts.num_centers = variant.centers;
    opts.random_centers = variant.random_centers;
    opts.clustering = variant.clustering;
    opts.num_clusters = variant.clusters;
    auto counts = Counts(g, tri, focal, opts);
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      ASSERT_EQ(counts[n], reference[n]) << variant.name << " node " << n;
    }
  }
}

TEST(CensusAgreementTest, PrebuiltCenterIndexAgrees) {
  GeneratorOptions gopts;
  gopts.num_nodes = 100;
  gopts.num_labels = 4;
  gopts.seed = 33;
  Graph g = GeneratePreferentialAttachment(gopts);
  Pattern tri = MakeTriangle(true);
  auto focal = AllNodes(g);
  CenterDistanceIndex index =
      CenterDistanceIndex::Build(g, PickHighestDegreeCenters(g, 12));

  CensusOptions with_index;
  with_index.k = 2;
  with_index.algorithm = CensusAlgorithm::kPtOpt;
  with_index.center_index = &index;
  auto a = Counts(g, tri, focal, with_index);

  CensusOptions without = with_index;
  without.center_index = nullptr;
  auto b = Counts(g, tri, focal, without);
  EXPECT_EQ(a, b);
}

TEST(CensusTest, StatsReportMatchesAndTimes) {
  GeneratorOptions gopts;
  gopts.num_nodes = 100;
  gopts.seed = 35;
  Graph g = GeneratePreferentialAttachment(gopts);
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  CensusOptions opts;
  opts.k = 1;
  opts.algorithm = CensusAlgorithm::kPtOpt;
  // num_matches comes from the matcher; pin the generic engine so it runs.
  opts.fast_path = FastPathMode::kOff;
  auto r = RunCensus(g, tri, focal, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.num_matches, 0u);
  EXPECT_GT(r->stats.nodes_expanded, 0u);
  EXPECT_GE(r->stats.TotalSeconds(), 0.0);
}

TEST(CensusTest, DirectedGraphNeighborhoodsIgnoreDirection) {
  // 0 -> 1 -> 2 directed chain; pattern is a directed edge. The 1-hop
  // neighborhood of node 2 includes node 1 via the incoming edge, so the
  // edge 1->2 is counted for node 2.
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}}, {}, /*directed=*/true);
  auto p = ParsePattern("PATTERN de {?A->?B;}");
  ASSERT_TRUE(p.ok());
  auto focal = AllNodes(g);
  for (auto algorithm : kAllAlgorithms) {
    CensusOptions opts;
    opts.algorithm = algorithm;
    opts.k = 1;
    auto counts = Counts(g, *p, focal, opts);
    EXPECT_EQ(counts[2], 1u) << CensusAlgorithmName(algorithm);
    EXPECT_EQ(counts[1], 2u) << CensusAlgorithmName(algorithm);
    EXPECT_EQ(counts[0], 1u) << CensusAlgorithmName(algorithm);
  }
}

}  // namespace
}  // namespace egocensus
