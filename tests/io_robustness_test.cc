// Malformed-input robustness: graph files and update streams must fail
// with a ParseError naming the line number and the offending token — never
// crash, never silently skip or mis-read. Locks the error-message contract
// of graph/io.cc (LoadGraph/ReadGraph) and dynamic/update_stream.cc.

#include "graph/io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "dynamic/update_stream.h"
#include "tests/test_util.h"

namespace egocensus {
namespace {

using testing::MakeGraph;

Status ParseGraphError(const std::string& text) {
  std::istringstream in(text);
  auto graph = ReadGraph(in, "test.graph");
  EXPECT_FALSE(graph.ok()) << "expected a parse failure for:\n" << text;
  return graph.ok() ? Status::Ok() : graph.status();
}

void ExpectGraphError(const std::string& text, const std::string& line_part,
                      const std::string& token_part) {
  Status status = ParseGraphError(text);
  EXPECT_EQ(status.code(), StatusCode::kParseError) << status.ToString();
  EXPECT_NE(status.ToString().find(line_part), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.ToString().find(token_part), std::string::npos)
      << status.ToString();
}

TEST(GraphIoRobustnessTest, RoundTripStillWorks) {
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}},
                      {0, 1, 0, 1, 0});
  std::string path = ::testing::TempDir() + "/roundtrip.graph";
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumNodes(), 5u);
  EXPECT_EQ(loaded->NumEdges(), 5u);
  EXPECT_EQ(loaded->label(1), 1u);
}

TEST(GraphIoRobustnessTest, EmptyInput) {
  Status status = ParseGraphError("");
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.ToString().find("missing header"), std::string::npos);
}

TEST(GraphIoRobustnessTest, BadMagicNamesLineAndToken) {
  ExpectGraphError("wrong-magic 1 0 2 1\n0\n0 1\n", "line 1", "wrong-magic");
}

TEST(GraphIoRobustnessTest, UnsupportedVersion) {
  ExpectGraphError("egocensus-graph 9 0 2 1\n0\n0 1\n", "line 1", "9");
}

TEST(GraphIoRobustnessTest, NonNumericNodeCount) {
  ExpectGraphError("egocensus-graph 1 0 two 1\n0\n0 1\n", "line 1", "two");
}

TEST(GraphIoRobustnessTest, TrailingTokenOnHeader) {
  ExpectGraphError("egocensus-graph 1 0 2 1 junk\n0\n0 1\n", "line 1",
                   "junk");
}

TEST(GraphIoRobustnessTest, BadLabelNamesLineAndToken) {
  ExpectGraphError("egocensus-graph 1 0 3 0\n1\n0 oops 1\n", "line 3",
                   "oops");
}

TEST(GraphIoRobustnessTest, TruncatedLabelLine) {
  ExpectGraphError("egocensus-graph 1 0 3 0\n1\n0 1\n", "line 3", "label");
}

TEST(GraphIoRobustnessTest, TruncatedEdgeList) {
  Status status =
      ParseGraphError("egocensus-graph 1 0 3 2\n0\n0 1\n");
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.ToString().find("truncated edge list"), std::string::npos)
      << status.ToString();
}

TEST(GraphIoRobustnessTest, NonNumericEdgeEndpoint) {
  ExpectGraphError("egocensus-graph 1 0 3 1\n0\nx 1\n", "line 3", "x");
}

TEST(GraphIoRobustnessTest, EdgeEndpointOutOfRange) {
  ExpectGraphError("egocensus-graph 1 0 3 1\n0\n0 7\n", "line 3",
                   "out of range");
}

TEST(GraphIoRobustnessTest, TrailingTokenOnEdgeLine) {
  ExpectGraphError("egocensus-graph 1 0 3 1\n0\n0 1 9\n", "line 3", "9");
}

TEST(GraphIoRobustnessTest, TrailingContentAfterEdgeList) {
  ExpectGraphError("egocensus-graph 1 0 3 1\n0\n0 1\ngarbage here\n",
                   "line 4", "garbage");
}

TEST(GraphIoRobustnessTest, BlankLinesAfterEdgeListAreFine) {
  std::istringstream in("egocensus-graph 1 0 3 1\n0\n0 1\n\n\n");
  auto graph = ReadGraph(in, "test.graph");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->NumNodes(), 3u);
  EXPECT_EQ(graph->NumEdges(), 1u);
}

Status ParseStreamError(const std::string& text) {
  std::istringstream in(text);
  auto updates = ParseUpdateStream(in);
  EXPECT_FALSE(updates.ok()) << "expected a parse failure for:\n" << text;
  return updates.ok() ? Status::Ok() : updates.status();
}

void ExpectStreamError(const std::string& text, const std::string& line_part,
                       const std::string& token_part) {
  Status status = ParseStreamError(text);
  EXPECT_EQ(status.code(), StatusCode::kParseError) << status.ToString();
  EXPECT_NE(status.ToString().find(line_part), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.ToString().find(token_part), std::string::npos)
      << status.ToString();
}

TEST(UpdateStreamRobustnessTest, ValidStreamParses) {
  std::istringstream in(
      "# comment\n"
      "ae 0 1\n"
      "+ 1 2\n"
      "re 0 1  # inline comment\n"
      "an 3\n"
      "an\n"
      "rn 2 % trailing comment\n"
      "\n");
  auto updates = ParseUpdateStream(in);
  ASSERT_TRUE(updates.ok()) << updates.status().ToString();
  EXPECT_EQ(updates->size(), 6u);
}

TEST(UpdateStreamRobustnessTest, UnknownOpNamesLineAndToken) {
  ExpectStreamError("ae 0 1\nzz 1 2\n", "line 2", "zz");
}

TEST(UpdateStreamRobustnessTest, MissingOperand) {
  ExpectStreamError("ae 0\n", "line 1", "ae");
}

TEST(UpdateStreamRobustnessTest, NonNumericOperand) {
  ExpectStreamError("ae 0 abc\n", "line 1", "ae");
}

TEST(UpdateStreamRobustnessTest, TrailingTokenAfterEdgeOp) {
  ExpectStreamError("ae 0 1 2\n", "line 1", "2");
}

TEST(UpdateStreamRobustnessTest, TrailingTokenAfterRemoveNode) {
  ExpectStreamError("ae 0 1\nrn 1 junk\n", "line 2", "junk");
}

TEST(UpdateStreamRobustnessTest, BadLabelOnAddNode) {
  ExpectStreamError("an x\n", "line 1", "x");
}

}  // namespace
}  // namespace egocensus
