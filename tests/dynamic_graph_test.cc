// Unit tests of the DynamicGraph overlay: accessor agreement with the
// materialized static graph under random mutation, no-op and error
// semantics, tombstoned node removal, compaction, and the dynamic subgraph
// extractor.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace egocensus {
namespace {

std::vector<NodeId> ToVec(std::span<const NodeId> s) {
  return std::vector<NodeId>(s.begin(), s.end());
}

/// Checks every topology accessor of `dg` against the equivalent fully
/// static graph.
void ExpectMatchesMaterialized(const DynamicGraph& dg) {
  Graph snap = dg.Materialize();
  ASSERT_EQ(snap.NumNodes(), dg.NumNodes());
  ASSERT_EQ(snap.NumEdges(), dg.NumEdges());
  ASSERT_EQ(snap.directed(), dg.directed());
  for (NodeId n = 0; n < dg.NumNodes(); ++n) {
    EXPECT_EQ(snap.label(n), dg.label(n)) << n;
    EXPECT_EQ(ToVec(snap.OutNeighbors(n)), ToVec(dg.OutNeighbors(n))) << n;
    EXPECT_EQ(ToVec(snap.InNeighbors(n)), ToVec(dg.InNeighbors(n))) << n;
    EXPECT_EQ(ToVec(snap.Neighbors(n)), ToVec(dg.Neighbors(n))) << n;
    EXPECT_EQ(snap.Degree(n), dg.Degree(n)) << n;
  }
  for (NodeId u = 0; u < dg.NumNodes(); ++u) {
    for (NodeId v = 0; v < dg.NumNodes(); ++v) {
      EXPECT_EQ(snap.HasEdge(u, v), dg.HasEdge(u, v)) << u << "->" << v;
      EXPECT_EQ(snap.HasUndirectedEdge(u, v), dg.HasUndirectedEdge(u, v))
          << u << "-" << v;
    }
  }
}

void RandomMutationAgreement(bool directed, std::uint64_t seed) {
  Graph base = GenerateErdosRenyi(25, 60, 2, seed, directed);
  DynamicGraph dg(std::move(base));
  Rng rng(seed * 31 + 7);
  for (int step = 0; step < 120; ++step) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(dg.NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(dg.NumNodes()));
    double roll = rng.NextDouble();
    if (u == v) continue;
    if (roll < 0.45) {
      auto r = dg.AddEdge(u, v);
      if (!dg.NodeRemoved(u) && !dg.NodeRemoved(v)) {
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    } else if (roll < 0.85) {
      auto r = dg.RemoveEdge(u, v);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    } else if (roll < 0.93) {
      auto id = dg.AddNode(static_cast<Label>(rng.NextBounded(2)));
      ASSERT_TRUE(id.ok());
    } else {
      auto r = dg.RemoveNode(u);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    if (step % 40 == 17) dg.Compact();
    if (step % 10 == 0) ExpectMatchesMaterialized(dg);
  }
  ExpectMatchesMaterialized(dg);
}

TEST(DynamicGraphTest, UndirectedRandomMutationAgreement) {
  RandomMutationAgreement(false, 3);
}

TEST(DynamicGraphTest, DirectedRandomMutationAgreement) {
  RandomMutationAgreement(true, 4);
}

TEST(DynamicGraphTest, NoopAndErrorSemantics) {
  DynamicGraph dg(testing::MakeGraph(4, {{0, 1}, {1, 2}}));

  auto dup = dg.AddEdge(0, 1);
  ASSERT_TRUE(dup.ok());
  EXPECT_FALSE(dup.value());  // duplicate insert: reported no-op

  auto missing = dg.RemoveEdge(0, 3);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing.value());  // missing delete: reported no-op

  EXPECT_FALSE(dg.AddEdge(2, 2).ok());   // self-loop
  EXPECT_FALSE(dg.AddEdge(0, 99).ok());  // out of range
  EXPECT_FALSE(dg.RemoveEdge(99, 0).ok());

  EXPECT_EQ(dg.NumEdges(), 2u);
  EXPECT_EQ(dg.version(), 0u);  // nothing above mutated the graph
}

TEST(DynamicGraphTest, RemoveNodeTombstones) {
  DynamicGraph dg(testing::MakeGraph(4, {{0, 1}, {1, 2}, {1, 3}}));
  auto removed = dg.RemoveNode(1);
  ASSERT_TRUE(removed.ok());
  EXPECT_TRUE(removed.value());

  EXPECT_TRUE(dg.NodeRemoved(1));
  EXPECT_EQ(dg.NumNodes(), 4u);  // id stays allocated
  EXPECT_EQ(dg.NumEdges(), 0u);
  EXPECT_EQ(dg.Degree(1), 0u);
  EXPECT_TRUE(dg.Neighbors(0).empty());

  // Mutating through a tombstoned node is an error; re-removal is a no-op.
  EXPECT_FALSE(dg.AddEdge(0, 1).ok());
  auto again = dg.RemoveNode(1);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value());

  // Materialize keeps the id as an isolated node.
  Graph snap = dg.Materialize();
  EXPECT_EQ(snap.NumNodes(), 4u);
  EXPECT_EQ(snap.Degree(1), 0u);
}

TEST(DynamicGraphTest, CompactClearsDeltaAndPreservesTopology) {
  DynamicGraph dg(testing::MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}}));
  ASSERT_TRUE(dg.AddEdge(3, 4).ok());
  ASSERT_TRUE(dg.RemoveEdge(0, 1).ok());
  ASSERT_TRUE(dg.AddNode(7).ok());
  EXPECT_GT(dg.DeltaSize(), 0u);
  std::uint64_t version = dg.version();

  Graph before = dg.Materialize();
  dg.Compact();
  EXPECT_EQ(dg.DeltaSize(), 0u);
  EXPECT_EQ(dg.version(), version);  // compaction is not a mutation
  Graph after = dg.Materialize();

  ASSERT_EQ(before.NumNodes(), after.NumNodes());
  ASSERT_EQ(before.NumEdges(), after.NumEdges());
  for (NodeId n = 0; n < before.NumNodes(); ++n) {
    EXPECT_EQ(before.label(n), after.label(n));
    EXPECT_EQ(ToVec(before.Neighbors(n)), ToVec(after.Neighbors(n)));
  }
  EXPECT_EQ(dg.NumLabels(), 8u);  // label 7 via the added node
}

TEST(DynamicGraphTest, ApplyDispatchesUpdates) {
  DynamicGraph dg(testing::MakeGraph(3, {{0, 1}}));
  NodeId added = kInvalidNode;
  ASSERT_TRUE(dg.Apply(GraphUpdate::AddNode(2), &added).ok());
  EXPECT_EQ(added, 3u);
  ASSERT_TRUE(dg.Apply(GraphUpdate::AddEdge(2, 3)).ok());
  ASSERT_TRUE(dg.Apply(GraphUpdate::RemoveEdge(0, 1)).ok());
  ASSERT_TRUE(dg.Apply(GraphUpdate::RemoveNode(0)).ok());
  EXPECT_TRUE(dg.NodeRemoved(0));
  EXPECT_TRUE(dg.HasEdge(2, 3));
  EXPECT_EQ(dg.NumEdges(), 1u);
}

TEST(DynamicGraphTest, DirectedViewsTrackReverseArcs) {
  Graph base(true);
  base.AddNodes(3);
  base.AddEdge(0, 1);
  CheckOk(base.Finalize(), "test fixture setup");
  DynamicGraph dg(std::move(base));

  // Adding the reverse arc must not duplicate the undirected view entry.
  ASSERT_TRUE(dg.AddEdge(1, 0).ok());
  EXPECT_EQ(ToVec(dg.Neighbors(0)), std::vector<NodeId>({1}));
  EXPECT_EQ(ToVec(dg.OutNeighbors(0)), std::vector<NodeId>({1}));
  EXPECT_EQ(ToVec(dg.InNeighbors(0)), std::vector<NodeId>({1}));

  // Removing one arc keeps the undirected adjacency (other arc remains).
  ASSERT_TRUE(dg.RemoveEdge(0, 1).ok());
  EXPECT_FALSE(dg.HasEdge(0, 1));
  EXPECT_TRUE(dg.HasEdge(1, 0));
  EXPECT_TRUE(dg.HasUndirectedEdge(0, 1));
  EXPECT_EQ(ToVec(dg.Neighbors(0)), std::vector<NodeId>({1}));

  ASSERT_TRUE(dg.RemoveEdge(1, 0).ok());
  EXPECT_FALSE(dg.HasUndirectedEdge(0, 1));
  EXPECT_TRUE(dg.Neighbors(0).empty());
}

TEST(DynamicGraphTest, DynamicExtractorMatchesStaticExtractor) {
  Graph base = GenerateErdosRenyi(40, 120, 3, 77);
  DynamicGraph dg(std::move(base));
  Rng rng(5);
  for (int step = 0; step < 40; ++step) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(dg.NumNodes()));
    NodeId v = static_cast<NodeId>(rng.NextBounded(dg.NumNodes()));
    if (u == v) continue;
    if (rng.NextDouble() < 0.5) {
      ASSERT_TRUE(dg.AddEdge(u, v).ok());
    } else {
      ASSERT_TRUE(dg.RemoveEdge(u, v).ok());
    }
  }

  Graph snap = dg.Materialize();
  DynamicSubgraphExtractor dynamic_extractor(dg);
  SubgraphExtractor static_extractor(snap);
  for (NodeId n = 0; n < dg.NumNodes(); n += 7) {
    for (std::uint32_t k : {1u, 2u}) {
      EgoSubgraph a = dynamic_extractor.ExtractKHop(n, k);
      EgoSubgraph b = static_extractor.ExtractKHop(n, k, false);
      ASSERT_EQ(a.to_global.size(), b.to_global.size()) << n << " k=" << k;
      // Same node set (order may differ only if BFS tie-breaking differed;
      // both expand sorted adjacency, so order matches too).
      EXPECT_EQ(a.to_global, b.to_global);
      ASSERT_EQ(a.graph.NumEdges(), b.graph.NumEdges());
      for (NodeId l = 0; l < a.graph.NumNodes(); ++l) {
        EXPECT_EQ(a.graph.label(l), b.graph.label(l));
        EXPECT_EQ(ToVec(a.graph.Neighbors(l)), ToVec(b.graph.Neighbors(l)));
      }
    }
  }
}

}  // namespace
}  // namespace egocensus
