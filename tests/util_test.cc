#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/bucket_queue.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace egocensus {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "PARSE_ERROR: bad token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    std::int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoolRespectsProbabilityRoughly) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2500);
  EXPECT_LT(hits, 3500);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  auto sample = rng.SampleWithoutReplacement(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::uint32_t> set(sample.begin(), sample.end());
  EXPECT_EQ(set.size(), 20u);
  for (auto v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleRequestLargerThanUniverse) {
  Rng rng(21);
  auto sample = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(BucketQueueTest, PopsInScoreOrder) {
  BucketQueue<int> q(10);
  q.Push(1, 5);
  q.Push(2, 3);
  q.Push(3, 7);
  q.Push(4, 3);
  std::size_t score;
  std::set<int> first_two;
  first_two.insert(q.PopMin(&score));
  EXPECT_EQ(score, 3u);
  first_two.insert(q.PopMin(&score));
  EXPECT_EQ(score, 3u);
  EXPECT_EQ(first_two, (std::set<int>{2, 4}));
  EXPECT_EQ(q.PopMin(&score), 1);
  EXPECT_EQ(score, 5u);
  EXPECT_EQ(q.PopMin(&score), 3);
  EXPECT_TRUE(q.Empty());
}

TEST(BucketQueueTest, CursorRewindsOnLowerPush) {
  BucketQueue<int> q(10);
  q.Push(1, 8);
  std::size_t score;
  EXPECT_EQ(q.PopMin(&score), 1);
  q.Push(2, 2);  // below the cursor position
  EXPECT_EQ(q.PopMin(&score), 2);
  EXPECT_EQ(score, 2u);
}

TEST(BucketQueueTest, SizeAndClear) {
  BucketQueue<int> q(4);
  q.Push(1, 0);
  q.Push(2, 4);
  EXPECT_EQ(q.Size(), 2u);
  q.Clear();
  EXPECT_TRUE(q.Empty());
  q.Push(3, 1);
  EXPECT_EQ(q.PopMin(), 3);
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  abc \t\n"), "abc");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringsTest, Split) {
  auto parts = Split("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("a,,b", ',').size(), 3u);
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(ToUpper("aBc"), "ABC");
  EXPECT_EQ(ToLower("aBc"), "abc");
  EXPECT_TRUE(EqualsIgnoreCase("Select", "SELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("Select", "SELECTS"));
  EXPECT_TRUE(StartsWith("SUBGRAPH(", "SUBGRAPH"));
  EXPECT_FALSE(StartsWith("SUB", "SUBGRAPH"));
}

TEST(TablePrinterTest, AlignedText) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  std::ostringstream os;
  t.PrintText(os);
  std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, Csv) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, FormatDouble) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 0), "2");
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,,\n");
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds() * 1e3 - 1e3);
}

}  // namespace
}  // namespace egocensus
