#include <gtest/gtest.h>

#include <condition_variable>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "census/census.h"
#include "util/bucket_queue.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace egocensus {
namespace {

// ---- annotated mutex wrappers (util/mutex.h) ----------------------------
// Behavioral smoke only: the annotations themselves are checked by clang's
// -Wthread-safety in CI and by egolint's lock-discipline check. Under TSan
// these tests double as a data-race probe for the wrappers.

TEST(MutexTest, MutexLockExcludesConcurrentWriters) {
  Mutex mu;
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, 4 * 10000);
}

TEST(MutexTest, EarlyUnlockReleases) {
  Mutex mu;
  MutexLock lock(mu);
  lock.Unlock();
  EXPECT_TRUE(mu.TryLock());  // released: reacquirable
  mu.Unlock();
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  mu.Lock();
  std::thread other([&] { EXPECT_FALSE(mu.TryLock()); });
  other.join();
  mu.Unlock();
}

TEST(MutexTest, WaitReacquiresAndSeesNotify) {
  Mutex mu;
  std::condition_variable cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock lock(mu);
    ready = true;
    cv.notify_one();
  });
  {
    MutexLock lock(mu);
    while (!ready) lock.Wait(cv);
    EXPECT_TRUE(ready);
  }
  waker.join();
}

TEST(MutexTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  std::condition_variable cv;
  MutexLock lock(mu);
  lock.WaitFor(cv, std::chrono::milliseconds(5));  // must not deadlock
}

TEST(SharedMutexTest, SharedReadersOverlapExclusiveWriterExcludes) {
  SharedMutex mu;
  int value = 0;
  {
    SharedMutexLock r1(mu);
    SharedMutexLock r2(mu);  // two shared holders at once: fine
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        SharedMutexExclusiveLock lock(mu);
        ++value;
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 5000; ++i) {
      SharedMutexLock lock(mu);
      EXPECT_GE(value, 0);
    }
  });
  for (auto& thread : threads) thread.join();
  SharedMutexLock lock(mu);
  EXPECT_EQ(value, 2 * 5000);
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "PARSE_ERROR: bad token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    std::int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoolRespectsProbabilityRoughly) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2500);
  EXPECT_LT(hits, 3500);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  auto sample = rng.SampleWithoutReplacement(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::uint32_t> set(sample.begin(), sample.end());
  EXPECT_EQ(set.size(), 20u);
  for (auto v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleRequestLargerThanUniverse) {
  Rng rng(21);
  auto sample = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(BucketQueueTest, PopsInScoreOrder) {
  BucketQueue<int> q(10);
  q.Push(1, 5);
  q.Push(2, 3);
  q.Push(3, 7);
  q.Push(4, 3);
  std::size_t score;
  std::set<int> first_two;
  first_two.insert(q.PopMin(&score));
  EXPECT_EQ(score, 3u);
  first_two.insert(q.PopMin(&score));
  EXPECT_EQ(score, 3u);
  EXPECT_EQ(first_two, (std::set<int>{2, 4}));
  EXPECT_EQ(q.PopMin(&score), 1);
  EXPECT_EQ(score, 5u);
  EXPECT_EQ(q.PopMin(&score), 3);
  EXPECT_TRUE(q.Empty());
}

TEST(BucketQueueTest, CursorRewindsOnLowerPush) {
  BucketQueue<int> q(10);
  q.Push(1, 8);
  std::size_t score;
  EXPECT_EQ(q.PopMin(&score), 1);
  q.Push(2, 2);  // below the cursor position
  EXPECT_EQ(q.PopMin(&score), 2);
  EXPECT_EQ(score, 2u);
}

TEST(BucketQueueTest, SizeAndClear) {
  BucketQueue<int> q(4);
  q.Push(1, 0);
  q.Push(2, 4);
  EXPECT_EQ(q.Size(), 2u);
  q.Clear();
  EXPECT_TRUE(q.Empty());
  q.Push(3, 1);
  EXPECT_EQ(q.PopMin(), 3);
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  abc \t\n"), "abc");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringsTest, Split) {
  auto parts = Split("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("a,,b", ',').size(), 3u);
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(ToUpper("aBc"), "ABC");
  EXPECT_EQ(ToLower("aBc"), "abc");
  EXPECT_TRUE(EqualsIgnoreCase("Select", "SELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("Select", "SELECTS"));
  EXPECT_TRUE(StartsWith("SUBGRAPH(", "SUBGRAPH"));
  EXPECT_FALSE(StartsWith("SUB", "SUBGRAPH"));
}

TEST(TablePrinterTest, AlignedText) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  std::ostringstream os;
  t.PrintText(os);
  std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, Csv) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, FormatDouble) {
  EXPECT_EQ(TablePrinter::FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 0), "2");
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,,\n");
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds() * 1e3 - 1e3);
}

TEST(TimerTest, MicrosConsistentWithSeconds) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  double micros = t.ElapsedMicros();
  double seconds = t.ElapsedSeconds();
  EXPECT_GE(micros, 0.0);
  // ElapsedMicros is the same reading scaled; a later ElapsedSeconds can
  // only be larger.
  EXPECT_LE(micros, seconds * 1e6 + 1.0);
}

TEST(TimerTest, NowMicrosMonotone) {
  std::uint64_t a = Timer::NowMicros();
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  std::uint64_t b = Timer::NowMicros();
  EXPECT_GE(b, a);
}

TEST(StringsTest, EndsWith) {
  EXPECT_TRUE(EndsWith("metrics.csv", ".csv"));
  EXPECT_TRUE(EndsWith("x", ""));
  EXPECT_FALSE(EndsWith("metrics.json", ".csv"));
  EXPECT_FALSE(EndsWith("sv", ".csv"));
}

TEST(CensusStatsTest, MergeSumsCountersAndTimes) {
  CensusStats a;
  a.num_matches = 3;
  a.match_seconds = 0.5;
  a.index_seconds = 0.25;
  a.census_seconds = 1.0;
  a.nodes_expanded = 100;
  a.reinsertions = 7;
  a.containment_checks = 40;
  CensusStats b;
  b.num_matches = 2;
  b.match_seconds = 0.5;
  b.index_seconds = 0.75;
  b.census_seconds = 2.0;
  b.nodes_expanded = 50;
  b.reinsertions = 3;
  b.containment_checks = 10;
  a.Merge(b);
  EXPECT_EQ(a.num_matches, 5u);
  EXPECT_DOUBLE_EQ(a.match_seconds, 1.0);
  EXPECT_DOUBLE_EQ(a.index_seconds, 1.0);
  EXPECT_DOUBLE_EQ(a.census_seconds, 3.0);
  EXPECT_EQ(a.nodes_expanded, 150u);
  EXPECT_EQ(a.reinsertions, 10u);
  EXPECT_EQ(a.containment_checks, 50u);
  EXPECT_DOUBLE_EQ(a.TotalSeconds(), 5.0);
}

TEST(CensusStatsTest, MergeMaxesPeakMetrics) {
  CensusStats a;
  a.threads_used = 2;
  a.peak_neighborhood = 10;
  CensusStats b;
  b.threads_used = 8;
  b.peak_neighborhood = 4;
  a.Merge(b);
  EXPECT_EQ(a.threads_used, 8u);
  EXPECT_EQ(a.peak_neighborhood, 10u);
  // Max-merge is order-insensitive: merging the other way agrees.
  CensusStats c;
  c.threads_used = 8;
  c.peak_neighborhood = 4;
  CensusStats d;
  d.threads_used = 2;
  d.peak_neighborhood = 10;
  c.Merge(d);
  EXPECT_EQ(c.threads_used, a.threads_used);
  EXPECT_EQ(c.peak_neighborhood, a.peak_neighborhood);
}

}  // namespace
}  // namespace egocensus
