// CensusServer behavior over real sockets: concurrent clients sharing one
// resident graph (bit-identical to serial execution), QUERY/UPDATE
// atomicity through the per-graph shared/exclusive lock, per-request
// governor enforcement with server-side clamping, admission-control BUSY,
// and the LOAD/UNLOAD lifecycle. Everything binds ephemeral ports and
// synchronizes on failpoints/counters — no fixed ports, no sleeps as
// synchronization.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dynamic/dynamic_graph.h"
#include "dynamic/update_stream.h"
#include "exec/failpoints.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "lang/engine.h"
#include "net/client.h"
#include "net/server.h"

namespace egocensus::net {
namespace {

constexpr const char* kTriangleQuery =
    "PATTERN t {?A-?B; ?B-?C; ?C-?A;} "
    "SELECT ID, COUNTP(t, SUBGRAPH(ID, 1)) FROM nodes";

Graph TestGraph(std::uint32_t nodes, std::uint32_t edges_per_node,
                std::uint64_t seed) {
  GeneratorOptions gen;
  gen.num_nodes = nodes;
  gen.edges_per_node = edges_per_node;
  gen.num_labels = 3;
  gen.seed = seed;
  return GeneratePreferentialAttachment(gen);
}

/// The serial ground truth: the same engine defaults the server uses.
std::string LocalCsv(const Graph& graph, const std::string& query) {
  QueryEngine engine(graph);
  auto table = engine.Execute(query);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  std::ostringstream os;
  if (table.ok()) table->WriteCsv(os);
  return os.str();
}

bool WaitFor(const std::function<bool()>& predicate) {
  for (int i = 0; i < 2000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

std::unique_ptr<CensusServer> StartServer(Graph graph,
                                          CensusServer::Options options) {
  options.listen.port = 0;
  auto server = std::make_unique<CensusServer>(options);
  EXPECT_TRUE(server->registry().Add("g", std::move(graph)).ok());
  EXPECT_TRUE(server->Start().ok());
  return server;
}

Endpoint EndpointOf(const CensusServer& server) {
  Endpoint endpoint;
  endpoint.host = "127.0.0.1";
  endpoint.port = server.port();
  return endpoint;
}

TEST(NetServerTest, EightConcurrentClientsBitIdenticalToSerial) {
  Graph graph = TestGraph(1500, 5, 13);
  std::string expected = LocalCsv(graph, kTriangleQuery);
  auto server = StartServer(std::move(graph), {});
  Endpoint endpoint = EndpointOf(*server);

  constexpr int kClients = 8;
  constexpr int kQueriesEach = 2;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect(endpoint);
      if (!client.ok()) {
        failures[c] = client.status().ToString();
        return;
      }
      for (int q = 0; q < kQueriesEach; ++q) {
        auto response =
            client->Call(Client::QueryRequest("g", kTriangleQuery));
        if (!response.ok()) {
          failures[c] = response.status().ToString();
          return;
        }
        if (response->type != FrameType::kResult ||
            response->Header("exec_status", "") != "OK") {
          failures[c] = "unexpected response " +
                        std::string(FrameTypeName(response->type));
          return;
        }
        if (response->body != expected) {
          failures[c] = "client " + std::to_string(c) +
                        " got counts differing from serial execution";
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const std::string& failure : failures) EXPECT_EQ(failure, "");
  EXPECT_EQ(server->counters().busy_rejected, 0u);
  // `completed` bumps after the response hit the wire, so the last client
  // can observe its reply before the server's counter increment lands.
  EXPECT_TRUE(WaitFor([&server] {
    return server->counters().completed == kClients * kQueriesEach;
  }));
}

TEST(NetServerTest, UpdateIsAtomicAgainstConcurrentQueries) {
  Graph graph = TestGraph(1200, 5, 17);

  // Serial references: counts before the batch and after it. The batch adds
  // fresh edges between mid-degree nodes (some may no-op if present; the
  // server applies the identical stream, so the reference stays exact).
  std::string updates_text;
  for (NodeId u = 100; u < 130; ++u) {
    updates_text += "ae " + std::to_string(u) + " " +
                    std::to_string(u + 523) + "\n";
  }
  std::string before = LocalCsv(graph, kTriangleQuery);
  DynamicGraph reference(graph);
  {
    std::istringstream stream(updates_text);
    auto updates = ParseUpdateStream(stream);
    ASSERT_TRUE(updates.ok());
    for (const GraphUpdate& update : *updates) {
      ASSERT_TRUE(reference.Apply(update).ok());
    }
  }
  std::string after = LocalCsv(reference.Materialize(), kTriangleQuery);
  ASSERT_NE(before, after) << "update batch must change some count for "
                              "the atomicity assertion to bite";

  auto server = StartServer(std::move(graph), {});
  Endpoint endpoint = EndpointOf(*server);

  // 6 query threads race one UPDATE. The per-graph shared/exclusive lock
  // makes the batch atomic: every query must see exactly the before-counts
  // or exactly the after-counts, never a half-applied batch.
  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  std::atomic<int> torn{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect(endpoint);
      if (!client.ok()) {
        failures[c] = client.status().ToString();
        return;
      }
      for (int q = 0; q < 5; ++q) {
        auto response =
            client->Call(Client::QueryRequest("g", kTriangleQuery));
        if (!response.ok()) {
          failures[c] = response.status().ToString();
          return;
        }
        if (response->body != before && response->body != after) {
          torn.fetch_add(1);
        }
      }
    });
  }
  std::thread updater([&] {
    auto client = Client::Connect(endpoint);
    ASSERT_TRUE(client.ok());
    auto response =
        client->Call(Client::UpdateRequest("g", updates_text));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->type, FrameType::kResult);
    EXPECT_EQ(response->Header("exec_status", ""), "OK");
  });
  for (auto& thread : threads) thread.join();
  updater.join();
  for (const std::string& failure : failures) EXPECT_EQ(failure, "");
  EXPECT_EQ(torn.load(), 0) << "a query observed a half-applied batch";

  // Settled state == serial application.
  auto client = Client::Connect(endpoint);
  ASSERT_TRUE(client.ok());
  auto final_response =
      client->Call(Client::QueryRequest("g", kTriangleQuery));
  ASSERT_TRUE(final_response.ok());
  EXPECT_EQ(final_response->body, after);
}

TEST(NetServerTest, DeadlinedQueryIsPartialWhileOthersComplete) {
  // Heavy enough that a 1 ms deadline cannot finish it (radius-2 triangle
  // census, ~hundreds of ms serial) while ungoverned peers still complete
  // with counts identical to serial execution.
  constexpr const char* kHeavyQuery =
      "PATTERN t {?A-?B; ?B-?C; ?C-?A;} "
      "SELECT ID, COUNTP(t, SUBGRAPH(ID, 2)) FROM nodes";
  Graph graph = TestGraph(8000, 8, 19);
  std::string expected = LocalCsv(graph, kHeavyQuery);
  auto server = StartServer(std::move(graph), {});
  Endpoint endpoint = EndpointOf(*server);

  constexpr int kPeers = 3;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kPeers);
  for (int c = 0; c < kPeers; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::Connect(endpoint);
      if (!client.ok()) {
        failures[c] = client.status().ToString();
        return;
      }
      auto response = client->Call(Client::QueryRequest("g", kHeavyQuery));
      if (!response.ok()) {
        failures[c] = response.status().ToString();
        return;
      }
      if (response->Header("exec_status", "") != "OK" ||
          response->body != expected) {
        failures[c] = "ungoverned peer did not complete bit-identically";
      }
    });
  }

  auto client = Client::Connect(endpoint);
  ASSERT_TRUE(client.ok());
  Message request = Client::QueryRequest("g", kHeavyQuery);
  request.headers["deadline_ms"] = "1";
  auto response = client->Call(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  // Still a RESULT — a governed stop returns the partial table plus the
  // stop metadata, exactly like the local CLI.
  EXPECT_EQ(response->type, FrameType::kResult);
  EXPECT_EQ(response->Header("exec_status", ""), "DEADLINE_EXCEEDED");
  EXPECT_EQ(response->Header("stop_reason", ""), "deadline_exceeded");
  EXPECT_GT(response->HeaderInt("focal_pending", 0) +
                response->HeaderInt("focal_approx", 0),
            0u);

  for (auto& thread : threads) thread.join();
  for (const std::string& failure : failures) EXPECT_EQ(failure, "");
}

TEST(NetServerTest, ServerCapClampsRequestedDeadline) {
  constexpr const char* kHeavyQuery =
      "PATTERN t {?A-?B; ?B-?C; ?C-?A;} "
      "SELECT ID, COUNTP(t, SUBGRAPH(ID, 2)) FROM nodes";
  CensusServer::Options options;
  options.max_deadline_ms = 1;  // server-wide cap
  auto server = StartServer(TestGraph(8000, 8, 19), options);

  auto client = Client::Connect(EndpointOf(*server));
  ASSERT_TRUE(client.ok());
  Message request = Client::QueryRequest("g", kHeavyQuery);
  request.headers["deadline_ms"] = "600000";  // ask for 10 minutes
  auto response = client->Call(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Header("stop_reason", ""), "deadline_exceeded")
      << "the 1 ms server cap must clamp the requested 10-minute deadline";

  // An uncapped header field still applies: no deadline requested -> the
  // cap itself governs (a capped server never runs unbounded work).
  auto uncapped = client->Call(Client::QueryRequest("g", kHeavyQuery));
  ASSERT_TRUE(uncapped.ok());
  EXPECT_EQ(uncapped->Header("stop_reason", ""), "deadline_exceeded");
}

TEST(NetServerTest, AdmissionQueuesBurstsAndRejectsBeyondDepth) {
  if (!failpoints::CompiledIn()) GTEST_SKIP() << "failpoints compiled out";
  failpoints::DisarmAll();
  CensusServer::Options options;
  options.max_inflight = 1;
  options.queue_depth = 1;
  auto server = StartServer(TestGraph(1500, 5, 13), options);
  Endpoint endpoint = EndpointOf(*server);

  // Park the first query inside its census at a governed checkpoint until
  // released, so "in flight" is a held state, not a race.
  std::atomic<bool> release{false};
  failpoints::Arm("exec/checkpoint", 1, [&release] {
    for (int i = 0; i < 2000 && !release.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  std::thread holder([&] {
    auto client = Client::Connect(endpoint);
    ASSERT_TRUE(client.ok());
    auto response = client->Call(Client::QueryRequest("g", kTriangleQuery));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->type, FrameType::kResult);
    EXPECT_EQ(response->Header("exec_status", ""), "OK");
  });
  ASSERT_TRUE(WaitFor([] { return failpoints::Hits("exec/checkpoint") >= 1; }));
  ASSERT_TRUE(WaitFor([&server] { return server->inflight() == 1; }));

  // Second QUERY: the slot is held, so it waits in the fair queue instead
  // of failing — the burst-absorption the queue exists for.
  std::thread queued([&] {
    auto client = Client::Connect(endpoint);
    ASSERT_TRUE(client.ok());
    auto response = client->Call(Client::QueryRequest("g", kTriangleQuery));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->type, FrameType::kResult);
    EXPECT_EQ(response->Header("exec_status", ""), "OK");
  });
  ASSERT_TRUE(WaitFor([&server] { return server->queue().depth() == 1; }));

  // Third QUERY: depth bound hit -> structured BUSY. Every advertised
  // field must survive the round trip through the client parser
  // (docs/SERVER.md, "Retry guidance").
  auto rejected_client = Client::Connect(endpoint);
  ASSERT_TRUE(rejected_client.ok());
  Message overflow = Client::QueryRequest("g", kTriangleQuery);
  overflow.headers["request_id"] = "busy-roundtrip-1";
  auto busy = rejected_client->Call(overflow);
  ASSERT_TRUE(busy.ok());
  EXPECT_EQ(busy->type, FrameType::kBusy);
  BusyInfo info = BusyInfoFromResponse(*busy);
  EXPECT_EQ(info.request_id, "busy-roundtrip-1");
  EXPECT_EQ(info.inflight, 1u);
  EXPECT_EQ(info.capacity, 1u);
  EXPECT_EQ(info.queued, 1u);
  EXPECT_GE(info.retry_after_ms, 25u);
  EXPECT_LE(info.retry_after_ms, 10000u);
  EXPECT_FALSE(info.draining);
  EXPECT_EQ(ResponseToStatus(*busy).code(), StatusCode::kResourceExhausted);

  // STATUS bypasses the queue entirely: the daemon stays observable while
  // saturated, and it reports the saturation — including queue state.
  auto status_client = Client::Connect(endpoint);
  ASSERT_TRUE(status_client.ok());
  auto status = status_client->Call(Client::StatusRequest());
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->type, FrameType::kResult);
  EXPECT_NE(status->body.find("\"inflight\": 1"), std::string::npos);
  EXPECT_NE(status->body.find("\"queued\": 1"), std::string::npos);
  EXPECT_NE(status->body.find("\"busy_rejected\": 1"), std::string::npos);

  release.store(true);
  holder.join();
  queued.join();
  failpoints::DisarmAll();
  EXPECT_EQ(server->counters().busy_rejected, 1u);
}

TEST(NetServerTest, LoadUnloadLifecycle) {
  std::string path = ::testing::TempDir() + "/net_server_lifecycle.graph";
  ASSERT_TRUE(SaveGraph(TestGraph(300, 4, 23), path).ok());

  auto server = StartServer(TestGraph(1500, 5, 13), {});
  auto client = Client::Connect(EndpointOf(*server));
  ASSERT_TRUE(client.ok());

  auto loaded = client->Call(Client::LoadRequest("g2", path));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->type, FrameType::kResult);

  // Duplicate name: rejected, not silently replaced.
  auto duplicate = client->Call(Client::LoadRequest("g2", path));
  ASSERT_TRUE(duplicate.ok());
  EXPECT_EQ(duplicate->type, FrameType::kError);
  EXPECT_EQ(duplicate->Header("code", ""), "INVALID_ARGUMENT");

  auto queried = client->Call(Client::QueryRequest("g2", kTriangleQuery));
  ASSERT_TRUE(queried.ok());
  EXPECT_EQ(queried->type, FrameType::kResult);

  auto unloaded = client->Call(Client::UnloadRequest("g2"));
  ASSERT_TRUE(unloaded.ok());
  EXPECT_EQ(unloaded->type, FrameType::kResult);

  auto missing = client->Call(Client::QueryRequest("g2", kTriangleQuery));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->type, FrameType::kError);
  EXPECT_EQ(missing->Header("code", ""), "NOT_FOUND");
  // The error names what IS loaded, so a typo is self-diagnosing.
  EXPECT_NE(missing->body.find("loaded: g"), std::string::npos);

  std::remove(path.c_str());
}

TEST(NetServerTest, StatusJsonCarriesBuildInfoAndRing) {
  auto server = StartServer(TestGraph(300, 4, 23), {});
  auto client = Client::Connect(EndpointOf(*server));
  ASSERT_TRUE(client.ok());
  auto queried = client->Call(Client::QueryRequest("g", kTriangleQuery));
  ASSERT_TRUE(queried.ok());
  EXPECT_FALSE(queried->Header("server", "").empty());

  auto status = client->Call(Client::StatusRequest());
  ASSERT_TRUE(status.ok());
  const std::string& json = status->body;
  for (const char* key :
       {"\"server\"", "\"build\"", "egocensus", "\"admission\"",
        "\"counters\"", "\"graphs\"", "\"recent\"", "\"QUERY\"",
        "\"protocol\": 1"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }

  // The ring records the query with its latency and byte sizes.
  auto recent = server->RecentRequests();
  bool found = false;
  for (const auto& record : recent) {
    if (record.type == "QUERY" && record.exec_status == "OK" &&
        record.bytes_out > 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(NetServerTest, ShutdownFrameStopsTheServer) {
  auto server = StartServer(TestGraph(300, 4, 23), {});
  auto client = Client::Connect(EndpointOf(*server));
  ASSERT_TRUE(client.ok());
  auto response = client->Call(Client::ShutdownRequest());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->type, FrameType::kResult);
  server->Wait();  // returns: the frame initiated a full shutdown
  EXPECT_TRUE(server->ShutdownRequested());
}

}  // namespace
}  // namespace egocensus::net
