#include "graph/generators.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "graph/bfs.h"
#include "graph/io.h"
#include "graph/profile_index.h"
#include "graph/distance_index.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace egocensus {
namespace {

TEST(PreferentialAttachmentTest, SizesMatchOptions) {
  GeneratorOptions opts;
  opts.num_nodes = 1000;
  opts.edges_per_node = 5;
  opts.seed = 1;
  Graph g = GeneratePreferentialAttachment(opts);
  EXPECT_EQ(g.NumNodes(), 1000u);
  // |E| ~= 5 |V| (seed clique adds a few, boundary nodes may add fewer).
  EXPECT_GE(g.NumEdges(), 4900u);
  EXPECT_LE(g.NumEdges(), 5100u);
}

TEST(PreferentialAttachmentTest, Deterministic) {
  GeneratorOptions opts;
  opts.num_nodes = 300;
  opts.seed = 42;
  Graph a = GeneratePreferentialAttachment(opts);
  Graph b = GeneratePreferentialAttachment(opts);
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (EdgeId e = 0; e < a.NumEdges(); ++e) {
    EXPECT_EQ(a.EdgeEndpoints(e), b.EdgeEndpoints(e));
  }
}

TEST(PreferentialAttachmentTest, NoDuplicateEdgesOrSelfLoops) {
  GeneratorOptions opts;
  opts.num_nodes = 500;
  opts.seed = 3;
  Graph g = GeneratePreferentialAttachment(opts);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    auto [u, v] = g.EdgeEndpoints(e);
    EXPECT_NE(u, v);
    auto key = std::minmax(u, v);
    EXPECT_TRUE(seen.emplace(key.first, key.second).second);
  }
}

TEST(PreferentialAttachmentTest, Connected) {
  GeneratorOptions opts;
  opts.num_nodes = 400;
  opts.seed = 4;
  Graph g = GeneratePreferentialAttachment(opts);
  BfsWorkspace bfs;
  EXPECT_EQ(bfs.Run(g, 0, 1000000).size(), g.NumNodes());
}

TEST(PreferentialAttachmentTest, LabelsInRange) {
  GeneratorOptions opts;
  opts.num_nodes = 200;
  opts.num_labels = 4;
  opts.seed = 5;
  Graph g = GeneratePreferentialAttachment(opts);
  EXPECT_LE(g.NumLabels(), 4u);
  std::set<Label> labels;
  for (NodeId n = 0; n < g.NumNodes(); ++n) labels.insert(g.label(n));
  EXPECT_EQ(labels.size(), 4u);  // all labels used with 200 draws
}

TEST(PreferentialAttachmentTest, SkewedDegreeDistribution) {
  GeneratorOptions opts;
  opts.num_nodes = 2000;
  opts.seed = 6;
  Graph g = GeneratePreferentialAttachment(opts);
  std::uint32_t max_degree = 0;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    max_degree = std::max(max_degree, g.Degree(n));
  }
  // Preferential attachment produces hubs far above the mean degree (10).
  EXPECT_GT(max_degree, 60u);
}

TEST(PreferentialAttachmentTest, TinyGraphs) {
  GeneratorOptions opts;
  opts.num_nodes = 0;
  EXPECT_EQ(GeneratePreferentialAttachment(opts).NumNodes(), 0u);
  opts.num_nodes = 1;
  EXPECT_EQ(GeneratePreferentialAttachment(opts).NumEdges(), 0u);
  opts.num_nodes = 3;
  opts.edges_per_node = 5;
  Graph g = GeneratePreferentialAttachment(opts);
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_LE(g.NumEdges(), 3u);
}

TEST(ErdosRenyiTest, ExactEdgeCount) {
  Graph g = GenerateErdosRenyi(100, 300, 2, 7);
  EXPECT_EQ(g.NumNodes(), 100u);
  EXPECT_EQ(g.NumEdges(), 300u);
}

TEST(ErdosRenyiTest, CapsAtCompleteGraph) {
  Graph g = GenerateErdosRenyi(5, 1000, 1, 8);
  EXPECT_EQ(g.NumEdges(), 10u);
}

TEST(ErdosRenyiTest, DirectedVariant) {
  Graph g = GenerateErdosRenyi(10, 30, 1, 9, /*directed=*/true);
  EXPECT_TRUE(g.directed());
  EXPECT_EQ(g.NumEdges(), 30u);
}

TEST(GraphIoTest, RoundTrip) {
  GeneratorOptions opts;
  opts.num_nodes = 150;
  opts.num_labels = 3;
  opts.seed = 10;
  Graph g = GeneratePreferentialAttachment(opts);
  std::string path = ::testing::TempDir() + "/egocensus_io_test.graph";
  ASSERT_TRUE(SaveGraph(g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumNodes(), g.NumNodes());
  EXPECT_EQ(loaded->NumEdges(), g.NumEdges());
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    EXPECT_EQ(loaded->label(n), g.label(n));
  }
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(loaded->EdgeEndpoints(e), g.EdgeEndpoints(e));
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFile) {
  auto r = LoadGraph("/nonexistent/path/x.graph");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ProfileIndexTest, CountsPerLabel) {
  Graph g = egocensus::testing::MakeGraph(
      4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}}, {0, 1, 1, 0});
  ProfileIndex idx = ProfileIndex::Build(g);
  EXPECT_EQ(idx.num_labels(), 2u);
  EXPECT_EQ(idx.Count(0, 0), 1u);  // neighbor 3 has label 0
  EXPECT_EQ(idx.Count(0, 1), 2u);  // neighbors 1, 2
  EXPECT_EQ(idx.Count(3, 0), 1u);
  EXPECT_EQ(idx.Count(3, 1), 0u);
}

TEST(CenterDistanceIndexTest, ExactDistances) {
  GeneratorOptions opts;
  opts.num_nodes = 200;
  opts.seed = 11;
  Graph g = GeneratePreferentialAttachment(opts);
  auto centers = PickHighestDegreeCenters(g, 4);
  CenterDistanceIndex idx = CenterDistanceIndex::Build(g, centers);
  ASSERT_EQ(idx.NumCenters(), 4u);
  BfsWorkspace bfs;
  for (std::size_t c = 0; c < 4; ++c) {
    bfs.Run(g, centers[c], 1000000);
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      EXPECT_EQ(idx.Distance(c, n), bfs.DistanceTo(n));
    }
  }
}

TEST(CenterDistanceIndexTest, UnreachedMarked) {
  Graph g = egocensus::testing::MakeGraph(4, {{0, 1}, {2, 3}});
  CenterDistanceIndex idx = CenterDistanceIndex::Build(g, {0});
  EXPECT_EQ(idx.Distance(0, 1), 1);
  EXPECT_EQ(idx.Distance(0, 2), CenterDistanceIndex::kUnreached);
}

TEST(CenterPickersTest, DegreeCentersAreHighestDegree) {
  GeneratorOptions opts;
  opts.num_nodes = 300;
  opts.seed = 12;
  Graph g = GeneratePreferentialAttachment(opts);
  auto centers = PickHighestDegreeCenters(g, 5);
  ASSERT_EQ(centers.size(), 5u);
  std::uint32_t min_center_degree = 0xFFFFFFFF;
  for (NodeId c : centers) {
    min_center_degree = std::min(min_center_degree, g.Degree(c));
  }
  std::set<NodeId> center_set(centers.begin(), centers.end());
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (center_set.count(n) == 0) {
      EXPECT_LE(g.Degree(n), min_center_degree);
    }
  }
}

TEST(CenterPickersTest, RandomCentersDistinct) {
  GeneratorOptions opts;
  opts.num_nodes = 100;
  opts.seed = 13;
  Graph g = GeneratePreferentialAttachment(opts);
  Rng rng(1);
  auto centers = PickRandomCenters(g, 10, &rng);
  std::set<NodeId> set(centers.begin(), centers.end());
  EXPECT_EQ(set.size(), 10u);
}

TEST(CenterPickersTest, CountCappedAtNumNodes) {
  Graph g = egocensus::testing::MakeGraph(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(PickHighestDegreeCenters(g, 10).size(), 3u);
}

}  // namespace
}  // namespace egocensus
