// Unit tests for the resource-governance primitives (exec/governor.h) and
// the deterministic fault-injection framework (exec/failpoints.h).

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/failpoints.h"
#include "exec/governor.h"
#include "util/timer.h"

namespace egocensus {
namespace {

TEST(DeadlineTest, DefaultIsUnlimited) {
  Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMicros(), 0);
}

TEST(DeadlineTest, PastDeadlineIsExpired) {
  Deadline d = Deadline::AtMicros(1);  // epoch start: long past
  EXPECT_FALSE(d.unlimited());
  EXPECT_TRUE(d.Expired());
  EXPECT_LT(d.RemainingMicros(), 0);
}

TEST(DeadlineTest, FarDeadlineIsNotExpired) {
  Deadline d = Deadline::AfterMillis(60'000);
  EXPECT_FALSE(d.unlimited());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMicros(), 0);
}

TEST(CancelTokenTest, CopiesShareTheFlag) {
  CancelToken a;
  CancelToken b = a;
  EXPECT_FALSE(a.Cancelled());
  b.Cancel();
  EXPECT_TRUE(a.Cancelled());
  EXPECT_TRUE(b.Cancelled());
}

TEST(MemoryBudgetTest, UnlimitedNeverFails) {
  MemoryBudget budget;
  EXPECT_FALSE(budget.limited());
  EXPECT_TRUE(budget.TryCharge(1ull << 40));
  EXPECT_EQ(budget.charged_bytes(), 1ull << 40);
}

TEST(MemoryBudgetTest, ChargeCrossingLimitFailsAndStaysRecorded) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.TryCharge(60));
  EXPECT_TRUE(budget.TryCharge(40));   // exactly at the limit: OK
  EXPECT_FALSE(budget.TryCharge(1));   // crossing: fails
  EXPECT_EQ(budget.charged_bytes(), 101);
}

TEST(GovernorTest, UngovernedRunNeverStops) {
  Governor gov;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(gov.Checkpoint(), StopReason::kNone);
  }
  EXPECT_FALSE(gov.stopped());
  EXPECT_EQ(gov.checkpoints(), 100u);
  EXPECT_TRUE(gov.ToStatus("test").ok());
}

TEST(GovernorTest, CancelStopsAtNextCheckpoint) {
  Governor gov;
  EXPECT_EQ(gov.Checkpoint(), StopReason::kNone);
  gov.RequestCancel();
  EXPECT_EQ(gov.Checkpoint(), StopReason::kCancelled);
  EXPECT_TRUE(gov.stopped());
  Status status = gov.ToStatus("unit");
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
}

TEST(GovernorTest, CancelTokenCopyCancelsFromAnotherThread) {
  Governor gov;
  CancelToken token = gov.cancel_token();
  std::thread canceller([token]() mutable { token.Cancel(); });
  canceller.join();
  EXPECT_EQ(gov.Checkpoint(), StopReason::kCancelled);
}

TEST(GovernorTest, ExpiredDeadlineStops) {
  Governor gov;
  gov.SetDeadline(Deadline::AtMicros(1));
  EXPECT_EQ(gov.Checkpoint(), StopReason::kDeadlineExceeded);
  EXPECT_EQ(gov.ToStatus("unit").code(), StatusCode::kDeadlineExceeded);
}

TEST(GovernorTest, BudgetOverrunStops) {
  Governor gov;
  gov.SetMemoryLimitBytes(1000);
  EXPECT_TRUE(gov.ChargeMemory(900));
  EXPECT_FALSE(gov.ChargeMemory(200));
  EXPECT_EQ(gov.reason(), StopReason::kResourceExhausted);
  EXPECT_EQ(gov.Checkpoint(), StopReason::kResourceExhausted);
  EXPECT_EQ(gov.ToStatus("unit").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(gov.memory_charged_bytes(), 1100u);
}

TEST(GovernorTest, FirstStopReasonWins) {
  Governor gov;
  gov.SetMemoryLimitBytes(10);
  EXPECT_FALSE(gov.ChargeMemory(100));  // kResourceExhausted recorded first
  gov.RequestCancel();
  // The sticky reason stays kResourceExhausted even though the cancel flag
  // is now also set: checkpoints report the first recorded stop.
  EXPECT_EQ(gov.Checkpoint(), StopReason::kResourceExhausted);
}

TEST(GovernorTest, StopIsSharedAcrossThreads) {
  Governor gov;
  std::atomic<int> stopped_workers{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&gov, &stopped_workers] {
      while (gov.Checkpoint() == StopReason::kNone) {
        std::this_thread::yield();
      }
      stopped_workers.fetch_add(1);
    });
  }
  gov.RequestCancel();
  for (auto& w : workers) w.join();
  EXPECT_EQ(stopped_workers.load(), 4);
}

TEST(ScratchChargeTest, ChargesOnlyGrowth) {
  Governor gov;
  ScratchCharge charge;
  EXPECT_TRUE(charge.Update(&gov, 100));
  EXPECT_EQ(gov.memory_charged_bytes(), 100u);
  EXPECT_TRUE(charge.Update(&gov, 50));  // shrink: no new charge
  EXPECT_EQ(gov.memory_charged_bytes(), 100u);
  EXPECT_TRUE(charge.Update(&gov, 250));  // beyond high water: +150
  EXPECT_EQ(gov.memory_charged_bytes(), 250u);
}

TEST(ScratchChargeTest, NullGovernorAlwaysContinues) {
  ScratchCharge charge;
  EXPECT_TRUE(charge.Update(nullptr, 1ull << 40));
}

TEST(StopReasonTest, Names) {
  EXPECT_STREQ(StopReasonName(StopReason::kNone), "none");
  EXPECT_STREQ(StopReasonName(StopReason::kCancelled), "cancelled");
  EXPECT_STREQ(StopReasonName(StopReason::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(StopReasonName(StopReason::kResourceExhausted),
               "resource_exhausted");
}

TEST(StatusCodeTest, GovernorCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "CANCELLED");
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
}

#if EGO_FAILPOINTS_ENABLED

class FailpointsTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoints::DisarmAll(); }
};

TEST_F(FailpointsTest, CompiledIn) { EXPECT_TRUE(failpoints::CompiledIn()); }

TEST_F(FailpointsTest, UnarmedHitsAreCounted) {
  // Arming any point turns counting on globally; an unarmed *named* point
  // still only counts when registered, so register as observe-only (nth=0).
  failpoints::Arm("test/a", 0, nullptr);
  EGO_FAILPOINT("test/a");
  EGO_FAILPOINT("test/a");
  EXPECT_EQ(failpoints::Hits("test/a"), 2u);
}

TEST_F(FailpointsTest, HandlerFiresOnNthHitExactlyOnce) {
  int fired = 0;
  failpoints::Arm("test/nth", 3, [&fired] { ++fired; });
  for (int i = 0; i < 10; ++i) EGO_FAILPOINT("test/nth");
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(failpoints::Hits("test/nth"), 10u);
}

TEST_F(FailpointsTest, DisarmKeepsHitsReadable) {
  failpoints::Arm("test/d", 1, nullptr);
  EGO_FAILPOINT("test/d");
  failpoints::Disarm("test/d");
  EXPECT_EQ(failpoints::Hits("test/d"), 1u);
}

TEST_F(FailpointsTest, RearmResetsHitCount) {
  failpoints::Arm("test/r", 0, nullptr);
  EGO_FAILPOINT("test/r");
  failpoints::Arm("test/r", 0, nullptr);
  EXPECT_EQ(failpoints::Hits("test/r"), 0u);
}

TEST_F(FailpointsTest, HandlerCanCancelAGovernor) {
  Governor gov;
  failpoints::Arm("test/cancel", 2, [&gov] { gov.RequestCancel(); });
  EXPECT_EQ(gov.Checkpoint(), StopReason::kNone);
  EGO_FAILPOINT("test/cancel");
  EXPECT_EQ(gov.Checkpoint(), StopReason::kNone);
  EGO_FAILPOINT("test/cancel");  // 2nd hit: fires
  EXPECT_EQ(gov.Checkpoint(), StopReason::kCancelled);
}

TEST_F(FailpointsTest, GovernorCheckpointIsAFailpointSite) {
  Governor gov;
  failpoints::Arm("exec/checkpoint", 5, [&gov] { gov.RequestCancel(); });
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    if (gov.Checkpoint() != StopReason::kNone) break;
    ++completed;
  }
  // The failpoint fires at the top of Checkpoint(), before the cancel poll,
  // so the 5th checkpoint itself observes the stop: 4 complete.
  EXPECT_EQ(completed, 4);
}

#endif  // EGO_FAILPOINTS_ENABLED

}  // namespace
}  // namespace egocensus
