// Edge cases and failure injection for the matchers: patterns larger than
// the graph, all-same-label regimes, negation-heavy patterns, predicates
// over missing/mixed-type attributes, maximum-size patterns, and pruning
// behavior.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "match/cn_matcher.h"
#include "match/gql_matcher.h"
#include "pattern/catalog.h"
#include "pattern/pattern_parser.h"
#include "tests/test_util.h"

namespace egocensus {
namespace {

using testing::CountEmbeddings;
using testing::MakeGraph;

TEST(MatcherEdgeCaseTest, PatternLargerThanGraph) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  CnMatcher cn;
  GqlMatcher gql;
  Pattern clq4 = MakeClique4(false);
  EXPECT_EQ(cn.FindMatches(g, clq4).size(), 0u);
  EXPECT_EQ(gql.FindMatches(g, clq4).size(), 0u);
  Pattern p5 = MakePath(5, false);
  EXPECT_EQ(cn.FindMatches(g, p5).size(), 0u);
}

TEST(MatcherEdgeCaseTest, EmptyGraph) {
  Graph g;
  CheckOk(g.Finalize(), "test fixture setup");
  CnMatcher cn;
  EXPECT_EQ(cn.FindMatches(g, MakeSingleNode()).size(), 0u);
  EXPECT_EQ(cn.FindMatches(g, MakeTriangle(false)).size(), 0u);
}

TEST(MatcherEdgeCaseTest, EdgelessGraph) {
  Graph g = MakeGraph(5, {});
  CnMatcher cn;
  EXPECT_EQ(cn.FindMatches(g, MakeSingleNode()).size(), 5u);
  EXPECT_EQ(cn.FindMatches(g, MakeSingleEdge()).size(), 0u);
}

TEST(MatcherEdgeCaseTest, MaximumSizePattern) {
  // A 9-node path (the supported maximum) in a 12-node path graph.
  Graph g = MakeGraph(12, {{0, 1},
                           {1, 2},
                           {2, 3},
                           {3, 4},
                           {4, 5},
                           {5, 6},
                           {6, 7},
                           {7, 8},
                           {8, 9},
                           {9, 10},
                           {10, 11}});
  Pattern p9 = MakePath(9, false);
  CnMatcher cn;
  EXPECT_EQ(cn.FindMatches(g, p9).size(), 4u);  // 12 - 9 + 1
}

TEST(MatcherEdgeCaseTest, NegationOnlyAmongPositiveSkeleton) {
  // Independent-set-like query: a path ?A-?B-?C with BOTH other pairs
  // negated is just an open wedge; validate against brute force on an ER
  // graph.
  Graph g = GenerateErdosRenyi(40, 100, 1, 7);
  auto p = ParsePattern("PATTERN w {?A-?B; ?B-?C; ?A!-?C;}");
  ASSERT_TRUE(p.ok());
  CnMatcher cn;
  std::uint64_t count = cn.FindMatches(g, *p).size();
  EXPECT_EQ(count * p->NumAutomorphisms(), CountEmbeddings(g, *p));
}

TEST(MatcherEdgeCaseTest, PredicateOnMissingAttributeYieldsNoMatch) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  g.node_attributes().Set(0, "AGE", std::int64_t{30});
  // Node 1 and 2 lack AGE entirely.
  auto p = ParsePattern("PATTERN q {?A-?B; [?A.AGE >= 0]; [?B.AGE >= 0];}");
  ASSERT_TRUE(p.ok());
  CnMatcher cn;
  EXPECT_EQ(cn.FindMatches(g, *p).size(), 0u);  // no edge has AGE on both
}

TEST(MatcherEdgeCaseTest, MixedTypePredicates) {
  Graph g = MakeGraph(2, {{0, 1}});
  g.node_attributes().Set(0, "X", std::int64_t{3});
  g.node_attributes().Set(1, "X", 3.0);
  // int vs double coercion: 3 == 3.0.
  auto eq = ParsePattern("PATTERN q {?A-?B; [?A.X = ?B.X];}");
  ASSERT_TRUE(eq.ok());
  CnMatcher cn;
  EXPECT_EQ(cn.FindMatches(g, *eq).size(), 1u);
  // string vs number never compares true.
  g.node_attributes().Set(1, "X", std::string("3"));
  EXPECT_EQ(cn.FindMatches(g, *eq).size(), 0u);
}

TEST(MatcherEdgeCaseTest, StringEqualityAndInequality) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  g.node_attributes().Set(0, "CITY", std::string("nyc"));
  g.node_attributes().Set(1, "CITY", std::string("nyc"));
  g.node_attributes().Set(2, "CITY", std::string("sf"));
  auto same = ParsePattern("PATTERN q {?A-?B; [?A.CITY = ?B.CITY];}");
  auto diff = ParsePattern("PATTERN q {?A-?B; [?A.CITY != ?B.CITY];}");
  ASSERT_TRUE(same.ok());
  ASSERT_TRUE(diff.ok());
  CnMatcher cn;
  EXPECT_EQ(cn.FindMatches(g, *same).size(), 1u);  // 0-1
  EXPECT_EQ(cn.FindMatches(g, *diff).size(), 1u);  // 1-2
}

TEST(MatcherEdgeCaseTest, AllSameLabelEqualsUnlabeled) {
  GeneratorOptions gen;
  gen.num_nodes = 60;
  gen.edges_per_node = 3;
  gen.num_labels = 1;
  gen.seed = 8;
  Graph g = GeneratePreferentialAttachment(gen);
  // Constrain every node of the triangle to label 0 — identical to the
  // unlabeled triangle on a label-0 graph.
  auto constrained = ParsePattern(
      "PATTERN t {?A-?B; ?B-?C; ?C-?A; [?A.LABEL=0]; [?B.LABEL=0]; "
      "[?C.LABEL=0];}");
  ASSERT_TRUE(constrained.ok());
  CnMatcher cn;
  EXPECT_EQ(cn.FindMatches(g, *constrained).size(),
            cn.FindMatches(g, MakeTriangle(false)).size());
}

// A structure whose nodes pass the profile filter for the labeled triangle
// (0,1,2) but where refinement must cascade: X(0)-Y(1), X(0)-Z(2),
// Y(1)-W(2), Z(2)-V(1). W and V fail the profile, which empties Y's and Z's
// candidate-neighbor sets, which in turn prunes X.
Graph PruningCascadeGraph() {
  return MakeGraph(5, {{0, 1}, {0, 2}, {1, 3}, {2, 4}}, {0, 1, 2, 2, 1});
}

TEST(MatcherEdgeCaseTest, PruningRemovesDeadCandidates) {
  Graph g = PruningCascadeGraph();
  CnMatcher cn;
  MatchSet matches = cn.FindMatches(g, MakeTriangle(true));
  EXPECT_EQ(matches.size(), 0u);
  EXPECT_GT(cn.stats().initial_candidates, 0u);
  EXPECT_GT(cn.stats().pruned_candidates, 0u);
  EXPECT_GT(cn.stats().prune_passes, 1u);  // the cascade needs iteration
}

TEST(MatcherEdgeCaseTest, DirectedGraphUndirectedPatternEdge) {
  // Undirected pattern edge on a directed graph matches either direction.
  Graph g = MakeGraph(3, {{0, 1}, {2, 1}}, {}, /*directed=*/true);
  Pattern edge = MakeSingleEdge();
  CnMatcher cn;
  EXPECT_EQ(cn.FindMatches(g, edge).size(), 2u);
}

TEST(MatcherEdgeCaseTest, BidirectionalPatternEdge) {
  // Pattern requiring edges in both directions.
  Graph g(true);
  g.AddNodes(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);  // one-way only
  CheckOk(g.Finalize(), "test fixture setup");
  auto p = ParsePattern("PATTERN mutual {?A->?B; ?B->?A;}");
  ASSERT_TRUE(p.ok());
  CnMatcher cn;
  GqlMatcher gql;
  EXPECT_EQ(cn.FindMatches(g, *p).size(), 1u);
  EXPECT_EQ(gql.FindMatches(g, *p).size(), 1u);
}

TEST(MatcherEdgeCaseTest, HighMultiplicityMatchesStoredCorrectly) {
  // K5: 10 triangles; verify each stored match is a real triangle with
  // distinct, sorted-consistent images.
  Graph g;
  g.AddNodes(5);
  for (NodeId u = 0; u < 5; ++u) {
    for (NodeId v = u + 1; v < 5; ++v) g.AddEdge(u, v);
  }
  CheckOk(g.Finalize(), "test fixture setup");
  CnMatcher cn;
  Pattern tri = MakeTriangle(false);
  MatchSet matches = cn.FindMatches(g, tri);
  ASSERT_EQ(matches.size(), 10u);
  for (std::size_t m = 0; m < matches.size(); ++m) {
    auto images = matches.Match(m);
    EXPECT_NE(images[0], images[1]);
    EXPECT_NE(images[1], images[2]);
    EXPECT_NE(images[0], images[2]);
    EXPECT_TRUE(g.HasUndirectedEdge(images[0], images[1]));
    EXPECT_TRUE(g.HasUndirectedEdge(images[1], images[2]));
    EXPECT_TRUE(g.HasUndirectedEdge(images[0], images[2]));
  }
}

TEST(MatcherEdgeCaseTest, GqlRefinementAlsoPrunes) {
  Graph g = PruningCascadeGraph();
  GqlMatcher gql;
  EXPECT_EQ(gql.FindMatches(g, MakeTriangle(true)).size(), 0u);
  EXPECT_GT(gql.stats().pruned_candidates, 0u);
}

}  // namespace
}  // namespace egocensus
