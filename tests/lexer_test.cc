#include "lang/lexer.h"

#include <gtest/gtest.h>

namespace egocensus {
namespace {

std::vector<Token> Lex(std::string_view s) {
  auto r = Tokenize(s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Token>{};
}

TEST(LexerTest, EmptyInput) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, Token::Type::kEnd);
}

TEST(LexerTest, Variables) {
  auto tokens = Lex("?A ?node_1");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, Token::Type::kVariable);
  EXPECT_EQ(tokens[0].text, "A");
  EXPECT_EQ(tokens[1].text, "node_1");
}

TEST(LexerTest, EdgeOperators) {
  auto tokens = Lex("?A-?B ?A->?B ?A<-?B ?A!->?C ?A!<-?C");
  std::vector<std::string> puncts;
  for (const auto& t : tokens) {
    if (t.type == Token::Type::kPunct) puncts.push_back(t.text);
  }
  EXPECT_EQ(puncts,
            (std::vector<std::string>{"-", "->", "<-", "!->", "!<-"}));
}

TEST(LexerTest, BangDashSplits) {
  // "!-" is lexed as '!' then '-'; the pattern parser reassembles it.
  auto tokens = Lex("?A!-?B");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_TRUE(tokens[1].IsPunct("!"));
  EXPECT_TRUE(tokens[2].IsPunct("-"));
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = Lex("= != <> < <= > >=");
  std::vector<std::string> puncts;
  for (const auto& t : tokens) {
    if (t.type == Token::Type::kPunct) puncts.push_back(t.text);
  }
  EXPECT_EQ(puncts, (std::vector<std::string>{"=", "!=", "<>", "<", "<=", ">",
                                              ">="}));
}

TEST(LexerTest, IdentifiersWithDash) {
  auto tokens = Lex("clq3-unlb SUBGRAPH-INTERSECTION(x)");
  EXPECT_EQ(tokens[0].text, "clq3-unlb");
  EXPECT_EQ(tokens[1].text, "SUBGRAPH-INTERSECTION");
  EXPECT_TRUE(tokens[2].IsPunct("("));
}

TEST(LexerTest, DottedReferenceSplits) {
  auto tokens = Lex("n1.ID");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "n1");
  EXPECT_TRUE(tokens[1].IsPunct("."));
  EXPECT_EQ(tokens[2].text, "ID");
}

TEST(LexerTest, Numbers) {
  auto tokens = Lex("42 3.14 0");
  EXPECT_EQ(tokens[0].type, Token::Type::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, Token::Type::kDouble);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 3.14);
  EXPECT_EQ(tokens[2].int_value, 0);
}

TEST(LexerTest, Strings) {
  auto tokens = Lex("'abc' \"d e\"");
  EXPECT_EQ(tokens[0].type, Token::Type::kString);
  EXPECT_EQ(tokens[0].text, "abc");
  EXPECT_EQ(tokens[1].text, "d e");
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Tokenize("'abc").ok());
}

TEST(LexerTest, Comments) {
  auto tokens = Lex("a -- comment here\nb");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, KeywordCaseInsensitive) {
  auto tokens = Lex("select SeLeCt");
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens[1].IsKeyword("select"));
}

TEST(LexerTest, BareQuestionMarkFails) {
  EXPECT_FALSE(Tokenize("? ").ok());
}

TEST(LexerTest, OffsetsRecorded) {
  auto tokens = Lex("ab cd");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 3u);
}

}  // namespace
}  // namespace egocensus
