// Pattern text round-trip (ToString -> parse -> structurally identical) and
// DOT export.

#include <gtest/gtest.h>

#include <sstream>

#include "graph/io.h"
#include "pattern/catalog.h"
#include "pattern/pattern_parser.h"
#include "tests/test_util.h"

namespace egocensus {
namespace {

void ExpectStructurallyEqual(const Pattern& a, const Pattern& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  EXPECT_EQ(a.PositiveEdges().size(), b.PositiveEdges().size());
  EXPECT_EQ(a.NegativeEdges().size(), b.NegativeEdges().size());
  EXPECT_EQ(a.Predicates().size(), b.Predicates().size());
  EXPECT_EQ(a.NumAutomorphisms(), b.NumAutomorphisms());
  EXPECT_EQ(a.Subpatterns().size(), b.Subpatterns().size());
  for (int v = 0; v < a.NumNodes(); ++v) {
    int bv = b.FindNode(a.VarName(v));
    ASSERT_GE(bv, 0) << "variable " << a.VarName(v) << " missing";
    EXPECT_EQ(a.LabelConstraint(v), b.LabelConstraint(bv));
  }
  // Same pairwise distances (captures the structural skeleton).
  for (int x = 0; x < a.NumNodes(); ++x) {
    for (int y = 0; y < a.NumNodes(); ++y) {
      EXPECT_EQ(a.Distance(x, y),
                b.Distance(b.FindNode(a.VarName(x)), b.FindNode(a.VarName(y))));
    }
  }
}

void ExpectRoundTrip(const Pattern& pattern) {
  std::string text = pattern.ToString();
  auto reparsed = ParsePattern(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  ExpectStructurallyEqual(pattern, *reparsed);
}

TEST(PatternRoundTripTest, CatalogPatterns) {
  ExpectRoundTrip(MakeSingleNode());
  ExpectRoundTrip(MakeSingleEdge());
  ExpectRoundTrip(MakeTriangle(false));
  ExpectRoundTrip(MakeTriangle(true));
  ExpectRoundTrip(MakeClique4(true));
  ExpectRoundTrip(MakeSquare(false));
  ExpectRoundTrip(MakePath(5, true));
  ExpectRoundTrip(MakeCoordinatorTriad());
}

TEST(PatternRoundTripTest, ParsedPatterns) {
  const char* sources[] = {
      "PATTERN a {?A-?B; ?B-?C; ?A!-?C;}",
      "PATTERN b {?X->?Y; ?Y->?Z; ?X!->?Z; [?X.LABEL=?Y.LABEL];}",
      "PATTERN c {?A-?B; [EDGE(?A,?B).SIGN = -1]; [?A.W >= 2.5];}",
      "PATTERN d {?A-?B; [?A.CITY = 'nyc']; SUBPATTERN s {?A; ?B;}}",
  };
  for (const char* source : sources) {
    auto p = ParsePattern(source);
    ASSERT_TRUE(p.ok()) << source;
    ExpectRoundTrip(*p);
  }
}

TEST(PatternToStringTest, MentionsAllPieces) {
  Pattern p = MakeCoordinatorTriad();
  std::string text = p.ToString();
  EXPECT_NE(text.find("PATTERN triad"), std::string::npos);
  EXPECT_NE(text.find("!->"), std::string::npos);
  EXPECT_NE(text.find("SUBPATTERN coordinator"), std::string::npos);
  EXPECT_NE(text.find("?A.LABEL"), std::string::npos);
}

TEST(DotExportTest, UndirectedGraph) {
  Graph g = testing::MakeGraph(3, {{0, 1}, {1, 2}}, {0, 1, 0});
  std::ostringstream out;
  ASSERT_TRUE(WriteDot(g, out).ok());
  std::string dot = out.str();
  EXPECT_NE(dot.find("graph g {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"1:1\""), std::string::npos);  // labeled node
}

TEST(DotExportTest, DirectedGraph) {
  Graph g = testing::MakeGraph(2, {{0, 1}}, {}, /*directed=*/true);
  std::ostringstream out;
  ASSERT_TRUE(WriteDot(g, out).ok());
  std::string dot = out.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(DotExportTest, MaxNodesTruncates) {
  Graph g = testing::MakeGraph(10, {{0, 1}, {8, 9}});
  std::ostringstream out;
  ASSERT_TRUE(WriteDot(g, out, /*max_nodes=*/5).ok());
  std::string dot = out.str();
  EXPECT_NE(dot.find("n0 -- n1"), std::string::npos);
  EXPECT_EQ(dot.find("n8"), std::string::npos);  // beyond the cap
}

TEST(DotExportTest, UnfinalizedRejected) {
  Graph g;
  g.AddNodes(2);
  std::ostringstream out;
  EXPECT_FALSE(WriteDot(g, out).ok());
}

}  // namespace
}  // namespace egocensus
