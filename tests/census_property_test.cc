// Wider cross-validation sweeps: directed patterns, negated edges and
// attribute predicates through the census engines, union/intersection
// pairwise sweeps, engine-level equivalence for every forced algorithm,
// and invariance properties (monotonicity in k, permutation of focal set).

#include <gtest/gtest.h>

#include "census/census.h"
#include "census/pairwise.h"
#include "graph/bfs.h"
#include "graph/generators.h"
#include "lang/engine.h"
#include "pattern/catalog.h"
#include "pattern/pattern_parser.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace egocensus {
namespace {

std::vector<std::uint64_t> Reference(const Graph& g, const Pattern& p,
                                     std::span<const NodeId> focal,
                                     std::uint32_t k,
                                     const std::string& subpattern = "") {
  CensusOptions opts;
  opts.algorithm = CensusAlgorithm::kNdBas;
  opts.k = k;
  opts.subpattern = subpattern;
  auto r = RunCensus(g, p, focal, opts);
  EXPECT_TRUE(r.ok());
  return r->counts;
}

void ExpectAllEnginesMatch(const Graph& g, const Pattern& p,
                           std::span<const NodeId> focal, std::uint32_t k,
                           const std::string& subpattern = "") {
  auto reference = Reference(g, p, focal, k, subpattern);
  for (auto algorithm :
       {CensusAlgorithm::kNdPvot, CensusAlgorithm::kNdDiff,
        CensusAlgorithm::kPtBas, CensusAlgorithm::kPtOpt,
        CensusAlgorithm::kPtRnd}) {
    CensusOptions opts;
    opts.algorithm = algorithm;
    opts.k = k;
    opts.subpattern = subpattern;
    auto r = RunCensus(g, p, focal, opts);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->counts, reference)
        << CensusAlgorithmName(algorithm) << " pattern " << p.name()
        << " k=" << k;
  }
}

TEST(CensusPropertyTest, DirectedPatternsAcrossEngines) {
  Graph g = GenerateErdosRenyi(80, 320, 2, 91, /*directed=*/true);
  auto focal = AllNodes(g);
  for (const char* text :
       {"PATTERN p {?A->?B; ?B->?C;}",
        "PATTERN p {?A->?B; ?B->?C; ?C->?A;}",
        "PATTERN p {?A->?B; ?A->?C;}"}) {
    auto p = ParsePattern(text);
    ASSERT_TRUE(p.ok());
    for (std::uint32_t k : {0u, 1u, 2u}) {
      ExpectAllEnginesMatch(g, *p, focal, k);
    }
  }
}

TEST(CensusPropertyTest, NegatedEdgePatternAcrossEngines) {
  GeneratorOptions gen;
  gen.num_nodes = 100;
  gen.edges_per_node = 3;
  gen.seed = 92;
  Graph g = GeneratePreferentialAttachment(gen);
  auto p = ParsePattern("PATTERN open {?A-?B; ?B-?C; ?A!-?C;}");
  ASSERT_TRUE(p.ok());
  auto focal = AllNodes(g);
  ExpectAllEnginesMatch(g, *p, focal, 1);
  ExpectAllEnginesMatch(g, *p, focal, 2);
}

TEST(CensusPropertyTest, AttributePredicatePatternAcrossEngines) {
  GeneratorOptions gen;
  gen.num_nodes = 90;
  gen.edges_per_node = 3;
  gen.seed = 93;
  Graph g = GeneratePreferentialAttachment(gen);
  Rng rng(5);
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    g.node_attributes().Set(n, "W",
                            static_cast<std::int64_t>(rng.NextBounded(10)));
  }
  auto p = ParsePattern("PATTERN heavy {?A-?B; [?A.W >= 5]; [?B.W < 5];}");
  ASSERT_TRUE(p.ok());
  auto focal = AllNodes(g);
  ExpectAllEnginesMatch(g, *p, focal, 1);
  ExpectAllEnginesMatch(g, *p, focal, 2);
}

TEST(CensusPropertyTest, CountsMonotoneInRadius) {
  GeneratorOptions gen;
  gen.num_nodes = 150;
  gen.edges_per_node = 3;
  gen.seed = 94;
  Graph g = GeneratePreferentialAttachment(gen);
  Pattern tri = MakeTriangle(false);
  auto focal = AllNodes(g);
  std::vector<std::uint64_t> previous(g.NumNodes(), 0);
  for (std::uint32_t k : {0u, 1u, 2u, 3u}) {
    CensusOptions opts;
    opts.algorithm = CensusAlgorithm::kNdPvot;
    opts.k = k;
    auto r = RunCensus(g, tri, focal, opts);
    ASSERT_TRUE(r.ok());
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      EXPECT_GE(r->counts[n], previous[n]) << "k=" << k << " node " << n;
    }
    previous = r->counts;
  }
  // At k >= diameter every node in the giant component counts all matches.
  CensusOptions opts;
  opts.algorithm = CensusAlgorithm::kNdPvot;
  opts.k = 30;
  auto r = RunCensus(g, tri, focal, opts);
  ASSERT_TRUE(r.ok());
  for (NodeId n = 1; n < g.NumNodes(); ++n) {
    EXPECT_EQ(r->counts[n], r->counts[0]);
  }
}

TEST(CensusPropertyTest, FocalOrderIrrelevant) {
  GeneratorOptions gen;
  gen.num_nodes = 80;
  gen.seed = 95;
  Graph g = GeneratePreferentialAttachment(gen);
  Pattern tri = MakeTriangle(false);
  std::vector<NodeId> focal = AllNodes(g);
  std::vector<NodeId> shuffled = focal;
  Rng rng(1);
  rng.Shuffle(&shuffled);
  for (auto algorithm : {CensusAlgorithm::kNdDiff, CensusAlgorithm::kPtOpt}) {
    CensusOptions opts;
    opts.algorithm = algorithm;
    opts.k = 2;
    auto a = RunCensus(g, tri, focal, opts);
    auto b = RunCensus(g, tri, shuffled, opts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->counts, b->counts) << CensusAlgorithmName(algorithm);
  }
}

TEST(CensusPropertyTest, SumOfNodePatternCountsEqualsNeighborhoodSizes) {
  // COUNTP(single_node, SUBGRAPH(ID, k)) must equal |N_k(n)| for every n —
  // ties the census definition to plain BFS.
  GeneratorOptions gen;
  gen.num_nodes = 120;
  gen.seed = 96;
  Graph g = GeneratePreferentialAttachment(gen);
  Pattern node = MakeSingleNode();
  auto focal = AllNodes(g);
  CensusOptions opts;
  opts.algorithm = CensusAlgorithm::kPtOpt;
  opts.k = 2;
  auto r = RunCensus(g, node, focal, opts);
  ASSERT_TRUE(r.ok());
  BfsWorkspace bfs;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    EXPECT_EQ(r->counts[n], bfs.Run(g, n, 2).size()) << "node " << n;
  }
}

TEST(CensusPropertyTest, EngineForcedAlgorithmsAllAgree) {
  GeneratorOptions gen;
  gen.num_nodes = 70;
  gen.num_labels = 3;
  gen.seed = 97;
  Graph g = GeneratePreferentialAttachment(gen);
  QueryEngine engine(g);
  const char* query =
      "PATTERN t {?A-?B; ?B-?C; ?C-?A;}\n"
      "SELECT ID, COUNTP(t, SUBGRAPH(ID, 2)) FROM nodes";
  QueryEngine::Options base;
  base.auto_algorithm = false;
  base.census.algorithm = CensusAlgorithm::kNdBas;
  auto reference = engine.Execute(query, base);
  ASSERT_TRUE(reference.ok());
  for (auto algorithm :
       {CensusAlgorithm::kNdPvot, CensusAlgorithm::kNdDiff,
        CensusAlgorithm::kPtBas, CensusAlgorithm::kPtOpt,
        CensusAlgorithm::kPtRnd}) {
    QueryEngine::Options options = base;
    options.census.algorithm = algorithm;
    auto result = engine.Execute(query, options);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->NumRows(), reference->NumRows());
    for (std::size_t r = 0; r < result->NumRows(); ++r) {
      EXPECT_EQ(std::get<std::int64_t>(result->At(r, 1)),
                std::get<std::int64_t>(reference->At(r, 1)))
          << CensusAlgorithmName(algorithm);
    }
  }
}

// ---- Pairwise sweeps ----

class PairwiseSweepTest
    : public ::testing::TestWithParam<std::tuple<PairNeighborhood,
                                                 std::uint32_t,
                                                 std::uint64_t>> {};

TEST_P(PairwiseSweepTest, PtEnginesAgreeAndNdValidates) {
  const auto& [neighborhood, k, seed] = GetParam();
  GeneratorOptions gen;
  gen.num_nodes = 50;
  gen.edges_per_node = 2;
  gen.seed = seed;
  Graph g = GeneratePreferentialAttachment(gen);
  Pattern edge = MakeSingleEdge();
  PairwiseCensusOptions opts;
  opts.k = k;
  opts.neighborhood = neighborhood;

  auto opt = RunPairwisePtOpt(g, edge, opts);
  auto bas = RunPairwisePtBas(g, edge, opts);
  ASSERT_TRUE(opt.ok());
  ASSERT_TRUE(bas.ok());
  EXPECT_EQ(*opt, *bas);

  // Validate a slice of pairs with the node-driven engines.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::size_t taken = 0;
  for (const auto& [key, count] : *opt) {
    pairs.push_back(UnpackPair(key));
    if (++taken >= 40) break;
  }
  pairs.emplace_back(0, 25);  // possibly-zero pair
  auto nd_bas = RunPairwiseNdBas(g, edge, pairs, opts);
  auto nd_pvot = RunPairwiseNdPvot(g, edge, pairs, opts);
  ASSERT_TRUE(nd_bas.ok());
  ASSERT_TRUE(nd_pvot.ok());
  EXPECT_EQ(*nd_bas, *nd_pvot);
  if (neighborhood == PairNeighborhood::kIntersection) {
    // Intersection: the sparse PT map is complete, so ND must agree
    // everywhere (union omits one-sided pairs by contract).
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      std::uint64_t key = PackPair(pairs[i].first, pairs[i].second);
      auto it = opt->find(key);
      EXPECT_EQ((*nd_bas)[i], it == opt->end() ? 0 : it->second);
    }
  } else {
    // Union: the PT engines omit, per contract, matches covered entirely by
    // one endpoint when the other endpoint covers no anchor, so the
    // node-driven (exact-semantics) count dominates the PT count.
    for (std::size_t i = 0; i + 1 < pairs.size(); ++i) {
      std::uint64_t key = PackPair(pairs[i].first, pairs[i].second);
      auto it = opt->find(key);
      ASSERT_NE(it, opt->end());
      EXPECT_GE((*nd_bas)[i], it->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PairwiseSweepTest,
    ::testing::Combine(::testing::Values(PairNeighborhood::kIntersection,
                                         PairNeighborhood::kUnion),
                       ::testing::Values(1u, 2u),
                       ::testing::Values(101u, 102u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ==
                                 PairNeighborhood::kIntersection
                             ? "inter"
                             : "union") +
             "_k" + std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace egocensus
