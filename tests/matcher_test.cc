#include <gtest/gtest.h>

#include "graph/generators.h"
#include "match/cn_matcher.h"
#include "match/gql_matcher.h"
#include "pattern/catalog.h"
#include "pattern/pattern_parser.h"
#include "tests/test_util.h"

namespace egocensus {
namespace {

using testing::CountEmbeddings;
using testing::MakeGraph;

std::uint64_t CnCount(const Graph& g, const Pattern& p) {
  CnMatcher matcher;
  return matcher.FindMatches(g, p).size();
}

TEST(CnMatcherTest, TrianglesInK4) {
  Graph k4 = MakeGraph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(CnCount(k4, MakeTriangle(false)), 4u);
  EXPECT_EQ(CnCount(k4, MakeClique4(false)), 1u);
}

TEST(CnMatcherTest, SquaresInCycleAndK4) {
  Graph c4 = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(CnCount(c4, MakeSquare(false)), 1u);
  Graph k4 = MakeGraph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(CnCount(k4, MakeSquare(false)), 3u);  // three 4-cycles in K4
}

TEST(CnMatcherTest, SingleNodeAndEdgeCounts) {
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(CnCount(g, MakeSingleNode()), 5u);
  EXPECT_EQ(CnCount(g, MakeSingleEdge()), 3u);
}

TEST(CnMatcherTest, NoMatchInTree) {
  Graph path = MakeGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  EXPECT_EQ(CnCount(path, MakeTriangle(false)), 0u);
  EXPECT_EQ(CnCount(path, MakeSquare(false)), 0u);
}

TEST(CnMatcherTest, LabelConstraintsRespected) {
  Graph tri = MakeGraph(3, {{0, 1}, {1, 2}, {2, 0}}, {0, 1, 2});
  EXPECT_EQ(CnCount(tri, MakeTriangle(true)), 1u);
  Graph wrong = MakeGraph(3, {{0, 1}, {1, 2}, {2, 0}}, {0, 1, 1});
  EXPECT_EQ(CnCount(wrong, MakeTriangle(true)), 0u);
}

TEST(CnMatcherTest, LabelAbsentFromGraph) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}, {2, 0}}, {0, 1, 0});
  EXPECT_EQ(CnCount(g, MakeTriangle(true)), 0u);  // label 2 never occurs
}

TEST(CnMatcherTest, DirectedTriadRespectsDirection) {
  // 0 -> 1 -> 2, no edge 0 -> 2.
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}}, {}, /*directed=*/true);
  auto p = ParsePattern("PATTERN t {?A->?B; ?B->?C;}");
  ASSERT_TRUE(p.ok());
  CnMatcher matcher;
  MatchSet matches = matcher.FindMatches(g, *p);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches.Image(0, p->FindNode("A")), 0u);
  EXPECT_EQ(matches.Image(0, p->FindNode("C")), 2u);
}

TEST(CnMatcherTest, NegativeEdgeFilters) {
  // Two wedges: 0-1-2 open, 3-4-5 closed by 3-5.
  Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {3, 5}});
  auto open_wedge = ParsePattern("PATTERN w {?A-?B; ?B-?C; ?A!-?C;}");
  ASSERT_TRUE(open_wedge.ok());
  // Only the open wedge 0-1-2 qualifies (one match after symmetry breaking).
  EXPECT_EQ(CnCount(g, *open_wedge), 1u);
}

TEST(CnMatcherTest, CoordinatorTriad) {
  // Directed graph with labels: coordinator requires same labels and no
  // shortcut edge.
  Graph g(true);
  g.AddNodes(4);
  CheckOk(g.SetLabel(0, 1), "test fixture setup");
  CheckOk(g.SetLabel(1, 1), "test fixture setup");
  CheckOk(g.SetLabel(2, 1), "test fixture setup");
  CheckOk(g.SetLabel(3, 2), "test fixture setup");
  g.AddEdge(0, 1);  // A -> B
  g.AddEdge(1, 2);  // B -> C : coordinator triad 0->1->2
  g.AddEdge(2, 3);  // different label, breaks predicate
  CheckOk(g.Finalize(), "test fixture setup");
  EXPECT_EQ(CnCount(g, MakeCoordinatorTriad()), 1u);
}

TEST(CnMatcherTest, AttributePredicate) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}});
  g.node_attributes().Set(0, "AGE", std::int64_t{20});
  g.node_attributes().Set(1, "AGE", std::int64_t{30});
  g.node_attributes().Set(2, "AGE", std::int64_t{15});
  auto p = ParsePattern("PATTERN adults {?A-?B; [?A.AGE >= 18]; [?B.AGE >= 18];}");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(CnCount(g, *p), 1u);  // only 0-1
}

TEST(CnMatcherTest, EdgeAttributePredicate) {
  Graph g;
  g.AddNodes(3);
  EdgeId e0 = g.AddEdge(0, 1);
  EdgeId e1 = g.AddEdge(1, 2);
  g.edge_attributes().Set(e0, "SIGN", std::int64_t{1});
  g.edge_attributes().Set(e1, "SIGN", std::int64_t{-1});
  CheckOk(g.Finalize(), "test fixture setup");
  auto p = ParsePattern("PATTERN neg {?A-?B; [EDGE(?A,?B).SIGN = -1];}");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(CnCount(g, *p), 1u);
}

TEST(CnMatcherTest, StatsPopulated) {
  GeneratorOptions opts;
  opts.num_nodes = 100;
  opts.seed = 3;
  Graph g = GeneratePreferentialAttachment(opts);
  CnMatcher matcher;
  matcher.FindMatches(g, MakeTriangle(false));
  EXPECT_GT(matcher.stats().initial_candidates, 0u);
  EXPECT_GT(matcher.stats().extension_checks, 0u);
  EXPECT_GE(matcher.stats().prune_passes, 1u);
}

TEST(CnMatcherTest, PrebuiltProfileIndexGivesSameResult) {
  GeneratorOptions opts;
  opts.num_nodes = 150;
  opts.num_labels = 3;
  opts.seed = 4;
  Graph g = GeneratePreferentialAttachment(opts);
  ProfileIndex profiles = ProfileIndex::Build(g);
  CnMatcher with_index(&profiles);
  CnMatcher without;
  Pattern tri = MakeTriangle(false);
  EXPECT_EQ(with_index.FindMatches(g, tri).size(),
            without.FindMatches(g, tri).size());
}

// ---- Property tests: CN vs brute-force embeddings, CN vs GQL ----

struct MatcherCase {
  const char* name;
  const char* pattern_text;  // empty -> catalog pattern via make()
  Pattern (*make)();
};

Pattern MakeTriUnlb() { return MakeTriangle(false); }
Pattern MakeTriLb() { return MakeTriangle(true); }
Pattern MakeSqrUnlb() { return MakeSquare(false); }
Pattern MakeClq4Unlb() { return MakeClique4(false); }
Pattern MakePath4() { return MakePath(4, false); }
Pattern MakeEdgeP() { return MakeSingleEdge(); }

class MatcherPropertyTest
    : public ::testing::TestWithParam<std::tuple<MatcherCase, std::uint64_t>> {
};

TEST_P(MatcherPropertyTest, CnMatchesBruteForceAndGql) {
  const auto& [test_case, seed] = GetParam();
  GeneratorOptions opts;
  opts.num_nodes = 60;
  opts.edges_per_node = 3;
  opts.num_labels = 3;
  opts.seed = seed;
  Graph g = GeneratePreferentialAttachment(opts);

  Pattern pattern = test_case.make();
  CnMatcher cn;
  GqlMatcher gql;
  std::uint64_t cn_count = cn.FindMatches(g, pattern).size();
  std::uint64_t gql_count = gql.FindMatches(g, pattern).size();
  std::uint64_t embeddings = CountEmbeddings(g, pattern);

  EXPECT_EQ(cn_count * pattern.NumAutomorphisms(), embeddings)
      << test_case.name << " seed=" << seed;
  EXPECT_EQ(cn_count, gql_count) << test_case.name << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    PatternsAndSeeds, MatcherPropertyTest,
    ::testing::Combine(
        ::testing::Values(MatcherCase{"clq3-unlb", "", &MakeTriUnlb},
                          MatcherCase{"clq3", "", &MakeTriLb},
                          MatcherCase{"sqr", "", &MakeSqrUnlb},
                          MatcherCase{"clq4", "", &MakeClq4Unlb},
                          MatcherCase{"path4", "", &MakePath4},
                          MatcherCase{"edge", "", &MakeEdgeP}),
        ::testing::Values(1u, 2u, 3u, 4u)),
    [](const auto& info) {
      std::string name = std::string(std::get<0>(info.param).name) + "_seed" +
                         std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(MatcherPropertyTest, DirectedPatternsAgainstBruteForce) {
  for (std::uint64_t seed : {10u, 11u, 12u}) {
    Graph g = GenerateErdosRenyi(40, 160, 2, seed, /*directed=*/true);
    for (const char* text :
         {"PATTERN p {?A->?B; ?B->?C;}", "PATTERN p {?A->?B; ?B->?C; ?C->?A;}",
          "PATTERN p {?A->?B; ?A->?C;}",
          "PATTERN p {?A->?B; ?B->?C; ?A!->?C;}"}) {
      auto p = ParsePattern(text);
      ASSERT_TRUE(p.ok()) << p.status().ToString();
      CnMatcher cn;
      GqlMatcher gql;
      std::uint64_t cn_count = cn.FindMatches(g, *p).size();
      EXPECT_EQ(cn_count * p->NumAutomorphisms(), CountEmbeddings(g, *p))
          << text << " seed=" << seed;
      EXPECT_EQ(cn_count, gql.FindMatches(g, *p).size()) << text;
    }
  }
}

TEST(MatcherPropertyTest, ErdosRenyiUndirected) {
  for (std::uint64_t seed : {20u, 21u}) {
    Graph g = GenerateErdosRenyi(50, 150, 4, seed);
    for (bool labeled : {false, true}) {
      Pattern tri = MakeTriangle(labeled);
      CnMatcher cn;
      GqlMatcher gql;
      std::uint64_t cn_count = cn.FindMatches(g, tri).size();
      EXPECT_EQ(cn_count * tri.NumAutomorphisms(), CountEmbeddings(g, tri));
      EXPECT_EQ(cn_count, gql.FindMatches(g, tri).size());
    }
  }
}

TEST(GqlMatcherTest, ScansMoreCandidatesThanCn) {
  GeneratorOptions opts;
  opts.num_nodes = 400;
  opts.num_labels = 4;
  opts.seed = 9;
  Graph g = GeneratePreferentialAttachment(opts);
  Pattern tri = MakeTriangle(true);
  CnMatcher cn;
  GqlMatcher gql;
  cn.FindMatches(g, tri);
  gql.FindMatches(g, tri);
  // The defining difference: GQL extension scans full candidate sets, CN
  // intersects small candidate-neighbor lists.
  EXPECT_GT(gql.stats().extension_checks, cn.stats().extension_checks);
}

}  // namespace
}  // namespace egocensus
