#include <gtest/gtest.h>

#include "apps/dblp_gen.h"
#include "apps/link_prediction.h"
#include "graph/bfs.h"

namespace egocensus {
namespace {

DblpOptions SmallDblp() {
  DblpOptions opts;
  opts.num_authors = 400;
  opts.num_communities = 8;
  opts.papers_per_year = 80;
  opts.seed = 71;
  return opts;
}

TEST(DblpGenTest, Deterministic) {
  DblpData a = GenerateDblp(SmallDblp());
  DblpData b = GenerateDblp(SmallDblp());
  EXPECT_EQ(a.train.NumEdges(), b.train.NumEdges());
  EXPECT_EQ(a.test_edges, b.test_edges);
}

TEST(DblpGenTest, TrainGraphShape) {
  DblpData data = GenerateDblp(SmallDblp());
  EXPECT_EQ(data.train.NumNodes(), 400u);
  EXPECT_GT(data.train.NumEdges(), 100u);
  EXPECT_EQ(data.train_edge_keys.size(), data.train.NumEdges());
}

TEST(DblpGenTest, TestEdgesDisjointFromTrain) {
  DblpData data = GenerateDblp(SmallDblp());
  EXPECT_FALSE(data.test_edges.empty());
  for (const auto& [a, b] : data.test_edges) {
    EXPECT_EQ(data.train_edge_keys.count(PackPair(a, b)), 0u);
    EXPECT_FALSE(data.train.HasUndirectedEdge(a, b));
  }
}

TEST(DblpGenTest, CommunityAttributeSet) {
  DblpData data = GenerateDblp(SmallDblp());
  auto c = data.train.GetNodeAttribute(0, "COMMUNITY");
  ASSERT_TRUE(c.has_value());
  EXPECT_GE(std::get<std::int64_t>(*c), 0);
  EXPECT_LT(std::get<std::int64_t>(*c), 8);
}

TEST(DblpGenTest, TriadicClosureYieldsTriangles) {
  DblpData data = GenerateDblp(SmallDblp());
  // Co-authorship graphs are triangle-heavy (papers are cliques).
  std::uint64_t triangles = 0;
  const Graph& g = data.train;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (NodeId v : g.Neighbors(u)) {
      if (v <= u) continue;
      for (NodeId w : g.Neighbors(v)) {
        if (w <= v) continue;
        if (g.HasUndirectedEdge(u, w)) ++triangles;
      }
    }
  }
  EXPECT_GT(triangles, 50u);
}

TEST(RankPairsTest, OrdersByCountThenKey) {
  PairCounts counts;
  counts[PackPair(1, 2)] = 5;
  counts[PackPair(3, 4)] = 9;
  counts[PackPair(5, 6)] = 5;
  counts[PackPair(7, 8)] = 0;  // dropped
  std::unordered_set<std::uint64_t> exclude = {PackPair(9, 10)};
  auto ranked = RankPairs(counts, exclude);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0], PackPair(3, 4));
  EXPECT_EQ(ranked[1], PackPair(1, 2));  // tie broken by key
  EXPECT_EQ(ranked[2], PackPair(5, 6));
}

TEST(RankPairsTest, ExcludesGivenPairs) {
  PairCounts counts;
  counts[PackPair(1, 2)] = 5;
  std::unordered_set<std::uint64_t> exclude = {PackPair(1, 2)};
  EXPECT_TRUE(RankPairs(counts, exclude).empty());
}

TEST(PrecisionAtKTest, Basics) {
  std::vector<std::uint64_t> ranked = {10, 20, 30, 40};
  std::unordered_set<std::uint64_t> truth = {20, 40};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, truth, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, truth, 4), 0.5);
  // K beyond the ranking: misses count against precision.
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, truth, 8), 0.25);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, truth, 0), 0.0);
}

TEST(JaccardTest, SimpleWedge) {
  // 0-1, 1-2: nodes 0 and 2 share neighbor 1. J = 1 / (1 + 1 - 1) = 1.
  Graph g;
  g.AddNodes(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  CheckOk(g.Finalize(), "test fixture setup");
  auto scores = ComputeJaccardScores(g);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_EQ(scores[0].first, PackPair(0, 2));
  EXPECT_DOUBLE_EQ(scores[0].second, 1.0);
}

TEST(LinkPredictionTest, EndToEndSmall) {
  DblpOptions opts = SmallDblp();
  DblpData data = GenerateDblp(opts);
  LinkPredictionOptions lp;
  lp.radii = {1, 2};
  lp.precision_ks = {20, 100};
  auto report = RunLinkPrediction(data, lp);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // 3 structures x 2 radii + jaccard + random.
  ASSERT_EQ(report->measures.size(), 8u);
  double best_census = 0;
  double random_precision = 0;
  for (const auto& m : report->measures) {
    ASSERT_EQ(m.precision.size(), 2u);
    for (double p : m.precision) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
    if (m.name == "random") {
      random_precision = m.precision[0];
    } else if (m.name != "jaccard") {
      best_census = std::max(best_census, m.precision[0]);
    }
  }
  // The census measures must carry real signal: far above random.
  EXPECT_GT(best_census, random_precision + 0.05);
}

TEST(LinkPredictionTest, MeasureNamesAndTimings) {
  DblpOptions opts = SmallDblp();
  opts.num_authors = 200;
  opts.papers_per_year = 40;
  DblpData data = GenerateDblp(opts);
  LinkPredictionOptions lp;
  lp.radii = {1};
  lp.precision_ks = {10};
  auto report = RunLinkPrediction(data, lp);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->measures.size(), 5u);
  EXPECT_EQ(report->measures[0].name, "node@1");
  EXPECT_EQ(report->measures[1].name, "edge@1");
  EXPECT_EQ(report->measures[2].name, "triangle@1");
  EXPECT_EQ(report->measures[3].name, "jaccard");
  EXPECT_EQ(report->measures[4].name, "random");
}

}  // namespace
}  // namespace egocensus
